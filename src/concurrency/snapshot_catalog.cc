#include "concurrency/snapshot_catalog.h"

#include "common/logging.h"

namespace cods {

namespace {

// The table names an effect list writes. Rename writes both endpoints:
// it removes `name` and creates `name2`, so a competing change to
// either is a conflict.
std::vector<std::string> WriteSet(const std::vector<CatalogEffect>& effects) {
  std::vector<std::string> names;
  names.reserve(effects.size());
  for (const CatalogEffect& e : effects) {
    switch (e.kind) {
      case CatalogEffect::Kind::kAdd:
      case CatalogEffect::Kind::kPut:
        names.push_back(e.table->name());
        break;
      case CatalogEffect::Kind::kDrop:
        names.push_back(e.name);
        break;
      case CatalogEffect::Kind::kRename:
        names.push_back(e.name);
        names.push_back(e.name2);
        break;
    }
  }
  return names;
}

}  // namespace

CatalogRoot::CatalogRoot(uint64_t id, const Catalog& catalog) : id_(id) {
  for (const std::string& name : catalog.TableNames()) {
    tables_.emplace(name, catalog.GetTable(name).ValueOrDie());
  }
}

Result<std::shared_ptr<const Table>> CatalogRoot::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::KeyError("no table named '" + name + "'");
  }
  return it->second;
}

bool CatalogRoot::HasTable(const std::string& name) const {
  return tables_.find(name) != tables_.end();
}

Status CatalogRoot::AddTable(std::shared_ptr<const Table>) {
  return Status::InvalidArgument(
      "catalog root is immutable; stage writes via SnapshotCatalog");
}

void CatalogRoot::PutTable(std::shared_ptr<const Table>) {
  CODS_CHECK(false)
      << "PutTable on an immutable catalog root; stage writes via "
         "SnapshotCatalog";
}

Status CatalogRoot::DropTable(const std::string&) {
  return Status::InvalidArgument(
      "catalog root is immutable; stage writes via SnapshotCatalog");
}

Status CatalogRoot::RenameTable(const std::string&, const std::string&) {
  return Status::InvalidArgument(
      "catalog root is immutable; stage writes via SnapshotCatalog");
}

std::vector<std::string> CatalogRoot::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

std::shared_ptr<const Table> CatalogRoot::Lookup(
    const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

Catalog MaterializeCatalog(const CatalogRoot& root) {
  Catalog catalog;
  for (const auto& [_, table] : root.tables()) catalog.PutTable(table);
  return catalog;
}

SnapshotCatalog::SnapshotCatalog()
    : live_pins_(std::make_shared<std::atomic<int64_t>>(0)) {
  root_.store(std::make_shared<const CatalogRoot>(),
              std::memory_order_release);
}

Snapshot SnapshotCatalog::GetSnapshot() const {
  return Snapshot(root_.load(std::memory_order_acquire), live_pins_);
}

Status SnapshotCatalog::Commit(WriteTxn&& txn, const PreSwapFn& pre_swap) {
  return CommitEffects(txn.impl_->base, txn.impl_->effects, pre_swap);
}

Status SnapshotCatalog::CommitEffects(const RootPtr& base,
                                      const std::vector<CatalogEffect>& effects,
                                      const PreSwapFn& pre_swap) {
  CODS_CHECK(base != nullptr);
  std::lock_guard<std::mutex> lock(commit_mu_);
  RootPtr current = root_.load(std::memory_order_acquire);
  if (current != base) {
    // First-writer-wins: another writer committed since `base` was
    // pinned. The loser is whoever's write set overlaps a table the
    // winner changed — pointer identity per name, so a name that was
    // absent in both or maps to the same Table version is no conflict.
    for (const std::string& name : WriteSet(effects)) {
      if (base->Lookup(name) != current->Lookup(name)) {
        aborts_.fetch_add(1, std::memory_order_relaxed);
        return Status::Aborted(
            "write-write conflict on table '" + name + "': root " +
            std::to_string(current->id()) + " changed it since base root " +
            std::to_string(base->id()));
      }
    }
  }
  if (effects.empty()) {
    // A script that applied nothing still runs the durability hook (a
    // failed script must reach the WAL so replay reproduces the failure
    // prefix), but there is no new root to publish.
    if (pre_swap) CODS_RETURN_NOT_OK(pre_swap());
    return Status::OK();
  }
  // Rebase: replay the effects onto the current root. Validation
  // guaranteed every written name still maps to the table version the
  // staging run saw, so a replay failure is an invariant breach.
  Catalog rebased = MaterializeCatalog(*current);
  for (const CatalogEffect& effect : effects) {
    Status st = ApplyEffect(effect, &rebased);
    if (!st.ok()) {
      return Status::Corruption("snapshot commit rebase diverged: " +
                                st.message());
    }
  }
  // Durability before visibility: the root swap happens only after the
  // hook (the WAL commit fsync) succeeds.
  if (pre_swap) CODS_RETURN_NOT_OK(pre_swap());
  CatalogRoot::TableMap tables;
  for (const std::string& name : rebased.TableNames()) {
    tables.emplace(name, rebased.GetTable(name).ValueOrDie());
  }
  Publish(std::move(tables));
  return Status::OK();
}

void SnapshotCatalog::Reset(const Catalog& catalog) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  CatalogRoot::TableMap tables;
  for (const std::string& name : catalog.TableNames()) {
    tables.emplace(name, catalog.GetTable(name).ValueOrDie());
  }
  Publish(std::move(tables));
}

void SnapshotCatalog::Publish(CatalogRoot::TableMap tables) {
  auto next = std::make_shared<const CatalogRoot>(
      next_root_id_.fetch_add(1, std::memory_order_relaxed),
      std::move(tables));
  root_.store(std::move(next), std::memory_order_release);
  commits_.fetch_add(1, std::memory_order_relaxed);
}

SnapshotCatalog::Stats SnapshotCatalog::GetStats() const {
  Stats stats;
  RootPtr current = root_.load(std::memory_order_acquire);
  stats.root_id = current->id();
  stats.tables = current->size();
  stats.commits = commits_.load(std::memory_order_relaxed);
  stats.aborts = aborts_.load(std::memory_order_relaxed);
  stats.live_pins = live_pins_->load(std::memory_order_relaxed);
  return stats;
}

}  // namespace cods

// The snapshot-commit execution core of EvolutionEngine.
//
// EvolutionEngine (evolution/engine.h) declares the SnapshotCatalog
// constructor and RunSnapshot but evolution sits below concurrency/ in
// the architecture, so the definitions — which drive the MVCC commit
// protocol — live here, with the protocol they integrate. They link into
// the same engine; only the include graph is layered.

#include "common/script_log.h"
#include "concurrency/snapshot_catalog.h"
#include "evolution/engine.h"
#include "plan/staged_catalog.h"

namespace cods {

EvolutionEngine::EvolutionEngine(SnapshotCatalog* snapshots,
                                 EvolutionObserver* observer,
                                 EngineOptions options)
    : catalog_(nullptr),
      snapshots_(snapshots),
      observer_(observer),
      options_(options),
      exec_ctx_(options.num_threads) {
  CODS_CHECK(snapshots_ != nullptr);
}

Status EvolutionEngine::RunSnapshot(const std::vector<Smo>& script,
                                    TaskGraphStats* stats, bool planned) {
  if (stats != nullptr) *stats = {};
  if (script.empty()) return Status::OK();
  // Pin the base root and stage the whole script against it; readers
  // keep serving, and nothing here touches the published root.
  RootPtr base = snapshots_->current();
  StagedCatalog staged(base.get());
  std::vector<std::vector<CatalogEffect>> effects(script.size());
  size_t applied = 0;
  Status run = StageScript(&staged, script, planned, stats, &effects, &applied);

  std::vector<CatalogEffect> prefix;
  for (size_t i = 0; i < applied; ++i) {
    prefix.insert(prefix.end(), effects[i].begin(), effects[i].end());
  }
  // In snapshot mode the WAL records the script inside the commit
  // critical section: after conflict validation (an aborted script
  // never reaches the log — it had no effect, so replay must not see
  // it) and strictly before the root swap (readers can only observe
  // roots whose scripts are fsync-durable).
  SnapshotCatalog::PreSwapFn pre_swap;
  if (options_.wal != nullptr) {
    pre_swap = [this, &script, applied]() -> Status {
      ScriptLog& wal = *options_.wal;
      CODS_RETURN_NOT_OK(wal.BeginScript());
      for (const Smo& smo : script) {
        CODS_RETURN_NOT_OK(wal.AppendStatement(smo.ToString()));
      }
      return wal.CommitScript(static_cast<uint32_t>(applied));
    };
  }
  // A conflict abort or durability failure outranks the script's own
  // status: the caller must not treat any part of it as applied.
  CODS_RETURN_NOT_OK(snapshots_->CommitEffects(base, prefix, pre_swap));
  return run;
}

}  // namespace cods

#include "concurrency/versioned_catalog.h"

#include <unordered_set>

namespace cods {

Status VersionedCatalog::Apply(const std::function<Status(TableStore&)>& fn) {
  SnapshotCatalog::WriteTxn txn = serving_.BeginWrite();
  CODS_RETURN_NOT_OK(fn(txn.store()));
  return serving_.Commit(std::move(txn));
}

uint64_t VersionedCatalog::Commit(const std::string& message) {
  versions_.push_back({message, serving_.current()});
  return versions_.size();  // 1-based id
}

Result<const VersionedCatalog::Version*> VersionedCatalog::FindVersion(
    uint64_t version) const {
  if (version == 0 || version > versions_.size()) {
    return Status::OutOfRange("no version " + std::to_string(version) +
                              " (have 1.." +
                              std::to_string(versions_.size()) + ")");
  }
  return &versions_[version - 1];
}

std::vector<VersionedCatalog::VersionInfo> VersionedCatalog::History()
    const {
  std::vector<VersionInfo> out;
  out.reserve(versions_.size());
  for (size_t i = 0; i < versions_.size(); ++i) {
    VersionInfo info;
    info.id = i + 1;
    info.message = versions_[i].message;
    for (const auto& [name, table] : versions_[i].root->tables()) {
      info.table_names.push_back(name);
      info.total_rows += table->rows();
    }
    out.push_back(std::move(info));
  }
  return out;
}

Result<std::shared_ptr<const Table>> VersionedCatalog::GetTableAt(
    uint64_t version, const std::string& name) const {
  CODS_ASSIGN_OR_RETURN(const Version* v, FindVersion(version));
  std::shared_ptr<const Table> table = v->root->Lookup(name);
  if (table == nullptr) {
    return Status::KeyError("no table '" + name + "' in version " +
                            std::to_string(version));
  }
  return table;
}

Result<std::vector<std::string>> VersionedCatalog::TableNamesAt(
    uint64_t version) const {
  CODS_ASSIGN_OR_RETURN(const Version* v, FindVersion(version));
  return v->root->TableNames();
}

Status VersionedCatalog::Checkout(uint64_t version) {
  CODS_ASSIGN_OR_RETURN(const Version* v, FindVersion(version));
  serving_.Reset(MaterializeCatalog(*v->root));
  return Status::OK();
}

VersionedCatalog::StorageStats VersionedCatalog::ComputeStorageStats()
    const {
  StorageStats stats;
  std::unordered_set<const Column*> seen;
  auto account = [&](const std::shared_ptr<const Table>& table) {
    for (size_t i = 0; i < table->num_columns(); ++i) {
      const Column* col = table->column(i).get();
      stats.naive_bytes += col->SizeBytes();
      if (seen.insert(col).second) {
        stats.unique_bytes += col->SizeBytes();
      }
    }
  };
  for (const Version& v : versions_) {
    for (const auto& [_, table] : v.root->tables()) account(table);
  }
  Snapshot snap = serving_.GetSnapshot();
  for (const auto& [_, table] : snap.root().tables()) account(table);
  return stats;
}

}  // namespace cods

// Snapshot-isolated concurrent serving: the MVCC catalog core that lets
// many reader threads run queries while SMO scripts build and commit.
//
// The storage layer already does the hard part — tables and columns are
// immutable-after-build and held by shared_ptr — so a consistent snapshot
// of the whole database is a refcounted name→table map, not a data copy.
// This file adds the serving protocol around that fact:
//
//   * CatalogRoot — one immutable version of the name→table map. It
//     implements the read side of TableStore, so QueryEngine (and any
//     other TableStore consumer) runs against it unchanged. Mutators
//     fail: a root never changes after publication.
//   * Snapshot — a reader's RAII pin on a root. Acquiring one is a
//     single atomic shared-ptr load; no lock is held while the query
//     runs, and the pinned root (with every table it references) stays
//     alive until the last pin drops, even across table drops and
//     whole-root retirement.
//   * SnapshotCatalog — the canonical root plus the commit protocol.
//     Writers stage mutations against their pinned base (the existing
//     StagedCatalog overlay) and commit the recorded CatalogEffect log
//     with first-writer-wins conflict detection: if another writer
//     committed since the base was pinned, the effects are rebased onto
//     the current root when the write sets touch disjoint tables, and
//     rejected with kAborted when they overlap. The swap itself is a
//     single atomic store under a commit mutex (single-writer critical
//     section — readers never take it).
//
// Durability ordering: Commit accepts a pre-swap hook that runs inside
// the commit critical section, after conflict validation and effect
// replay but before the root becomes visible. DurableDb points it at
// the WAL commit fsync, so a root can only be observed by readers after
// the script that produced it is crash-durable, and "committed" means
// the same thing to concurrency and to recovery.

#ifndef CODS_CONCURRENCY_SNAPSHOT_CATALOG_H_
#define CODS_CONCURRENCY_SNAPSHOT_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "plan/staged_catalog.h"
#include "storage/catalog.h"

namespace cods {

/// One immutable, published version of the catalog. Readers hold it by
/// shared_ptr<const CatalogRoot>; the map never changes after the
/// constructor returns, so lock-free concurrent reads are safe.
class CatalogRoot : public TableStore {
 public:
  using TableMap = std::map<std::string, std::shared_ptr<const Table>>;

  CatalogRoot() = default;
  CatalogRoot(uint64_t id, TableMap tables)
      : id_(id), tables_(std::move(tables)) {}
  /// Snapshots `catalog` (O(#tables) pointer copies).
  CatalogRoot(uint64_t id, const Catalog& catalog);

  /// Monotonic publication id: 0 for the initial empty root, then one
  /// per committed root swap.
  uint64_t id() const { return id_; }

  // Read side of TableStore (same lookup semantics and error text as
  // Catalog, so StagedCatalog overlays and QueryEngine behave
  // identically over either).
  Result<std::shared_ptr<const Table>> GetTable(
      const std::string& name) const override;
  bool HasTable(const std::string& name) const override;

  // A published root is immutable; the mutating half of the interface
  // exists only so the type satisfies TableStore. Writers stage against
  // a StagedCatalog overlay instead.
  Status AddTable(std::shared_ptr<const Table> table) override;
  void PutTable(std::shared_ptr<const Table> table) override;
  Status DropTable(const std::string& name) override;
  Status RenameTable(const std::string& from, const std::string& to) override;

  /// Table names in sorted order.
  std::vector<std::string> TableNames() const;
  size_t size() const { return tables_.size(); }
  const TableMap& tables() const { return tables_; }

  /// The mapped table, or null when absent (pointer-identity conflict
  /// checks want "absent" and "present" on one code path).
  std::shared_ptr<const Table> Lookup(const std::string& name) const;

 private:
  uint64_t id_ = 0;
  TableMap tables_;
};

using RootPtr = std::shared_ptr<const CatalogRoot>;

/// Rebuilds a mutable Catalog holding the same table pointers as `root`
/// (for checkpointing, serialization, and quiesced-equivalence tests).
Catalog MaterializeCatalog(const CatalogRoot& root);

/// A reader's pin on one root. Copyable and movable; the default
/// constructed value is empty. While any copy lives, the pinned root —
/// and every table version it references — survives, no matter what
/// writers commit. Safe to hold past the owning SnapshotCatalog's
/// destruction (the pin accounting object is shared, not borrowed).
class Snapshot {
 public:
  Snapshot() = default;

  bool valid() const { return root_ != nullptr; }
  explicit operator bool() const { return valid(); }

  /// The pinned root; must be valid().
  const CatalogRoot& root() const { return *root_; }
  const RootPtr& root_ptr() const { return root_; }
  /// The pinned root as the read-only store queries execute against.
  const TableStore* store() const { return root_.get(); }
  uint64_t id() const { return root_ == nullptr ? 0 : root_->id(); }

 private:
  friend class SnapshotCatalog;

  // Decrements the live-pin gauge when the last copy of this pin dies.
  struct PinToken {
    explicit PinToken(std::shared_ptr<std::atomic<int64_t>> g)
        : gauge(std::move(g)) {
      gauge->fetch_add(1, std::memory_order_relaxed);
    }
    ~PinToken() { gauge->fetch_sub(1, std::memory_order_relaxed); }
    PinToken(const PinToken&) = delete;
    PinToken& operator=(const PinToken&) = delete;
    std::shared_ptr<std::atomic<int64_t>> gauge;
  };

  Snapshot(RootPtr root, std::shared_ptr<std::atomic<int64_t>> gauge)
      : root_(std::move(root)),
        token_(std::make_shared<PinToken>(std::move(gauge))) {}

  RootPtr root_;
  std::shared_ptr<PinToken> token_;
};

/// The serving core: canonical root + single-writer commit protocol.
/// Thread-safe throughout; GetSnapshot never blocks on a writer.
class SnapshotCatalog {
 public:
  /// Runs inside the commit critical section, after conflict validation,
  /// before the new root becomes visible. A non-OK return aborts the
  /// commit with no visible effect (DurableDb hooks the WAL commit
  /// fsync here).
  using PreSwapFn = std::function<Status()>;

  /// A writer's staged transaction: a StagedCatalog overlay pinned to
  /// the base root current at BeginWrite, recording every mutation into
  /// an effect log for the commit-time rebase. Move-only.
  class WriteTxn {
   public:
    WriteTxn(WriteTxn&&) noexcept = default;
    WriteTxn& operator=(WriteTxn&&) noexcept = default;

    /// The mutable overlay view; SMO interpreters and loads run against
    /// this. Valid until the txn is committed or destroyed.
    TableStore& store() { return impl_->view; }
    /// The base root the txn staged against.
    const RootPtr& base() const { return impl_->base; }
    const std::vector<CatalogEffect>& effects() const {
      return impl_->effects;
    }

   private:
    friend class SnapshotCatalog;
    struct Impl {
      explicit Impl(RootPtr b)
          : base(std::move(b)), staged(base.get()), view(&staged, &effects) {}
      RootPtr base;
      std::vector<CatalogEffect> effects;
      StagedCatalog staged;
      StagedCatalog::View view;
    };
    explicit WriteTxn(RootPtr base)
        : impl_(std::make_unique<Impl>(std::move(base))) {}
    std::unique_ptr<Impl> impl_;
  };

  /// Serving stats for `.snapshot` and tests.
  struct Stats {
    uint64_t root_id = 0;    // id of the currently served root
    size_t tables = 0;       // table count of that root
    uint64_t commits = 0;    // successful root swaps (Reset included)
    uint64_t aborts = 0;     // commits rejected by conflict detection
    int64_t live_pins = 0;   // Snapshot handles currently alive
  };

  /// Starts serving an empty root (id 0).
  SnapshotCatalog();

  SnapshotCatalog(const SnapshotCatalog&) = delete;
  SnapshotCatalog& operator=(const SnapshotCatalog&) = delete;

  /// Pins the current root: one atomic shared-ptr load plus pin
  /// accounting. Never blocks on writers.
  Snapshot GetSnapshot() const;
  /// The current root without pin accounting (writer-side plumbing).
  RootPtr current() const { return root_.load(std::memory_order_acquire); }

  /// Opens a staged transaction against the current root.
  WriteTxn BeginWrite() const { return WriteTxn(current()); }

  /// Commits a staged transaction (first-writer-wins; see CommitEffects).
  Status Commit(WriteTxn&& txn, const PreSwapFn& pre_swap = {});

  /// The commit protocol: validates `effects` (staged against `base`)
  /// against the current root, rebases, runs `pre_swap`, swaps.
  ///
  /// Conflict rule — first-writer-wins over table names: if any table
  /// name in the effects' write set maps to a different table version
  /// (pointer identity) in the current root than in `base`, a competing
  /// writer got there first and the commit returns kAborted. Writers
  /// whose write sets touch only unchanged names rebase cleanly: their
  /// effects replay onto the current root, preserving the other
  /// writers' committed work.
  ///
  /// An empty effect list still runs `pre_swap` (a failed script must
  /// still reach the WAL for replay parity) but publishes no new root.
  Status CommitEffects(const RootPtr& base,
                       const std::vector<CatalogEffect>& effects,
                       const PreSwapFn& pre_swap = {});

  /// Forced swap to an image of `catalog`, bypassing conflict detection
  /// — for recovery restore and version checkout, where the caller owns
  /// the timeline. Existing pins keep their old roots.
  void Reset(const Catalog& catalog);

  Stats GetStats() const;

 private:
  // Publishes `next` as the current root; commit_mu_ must be held.
  void Publish(CatalogRoot::TableMap tables);

  mutable std::mutex commit_mu_;  // writers only; readers never take it
  std::atomic<std::shared_ptr<const CatalogRoot>> root_;
  std::shared_ptr<std::atomic<int64_t>> live_pins_;
  std::atomic<uint64_t> next_root_id_{1};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
};

}  // namespace cods

#endif  // CODS_CONCURRENCY_SNAPSHOT_CATALOG_H_

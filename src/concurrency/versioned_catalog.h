// Versioned catalog: cheap snapshots of the whole database across schema
// versions. Because tables and columns are immutable and shared by
// pointer, committing a version costs O(1) — it pins the serving core's
// current root — and the Wikipedia-style "170 schema versions in 5
// years" history from the paper's introduction stays affordable to keep
// online, with every old version queryable.
//
// Serving and history share one representation: the working state lives
// in a SnapshotCatalog (concurrency/snapshot_catalog.h), each committed
// version is a RootPtr into the same shared-root graph, and readers pin
// either with the same Snapshot handle. There is no mutable escape
// hatch: all mutation flows through the engine's snapshot-commit mode
// or through Apply(), so the atomic root swap is the single choke point
// every writer crosses.

#ifndef CODS_CONCURRENCY_VERSIONED_CATALOG_H_
#define CODS_CONCURRENCY_VERSIONED_CATALOG_H_

#include <functional>
#include <string>
#include <vector>

#include "concurrency/snapshot_catalog.h"
#include "storage/catalog.h"

namespace cods {

/// A serving SnapshotCatalog plus an append-only history of committed
/// versions, each a pinned root. Reads (GetSnapshot, history queries)
/// are safe against a concurrent writer; the mutating calls (Apply,
/// Commit, Checkout, Reset) are writer-side and must come from one
/// writer at a time, like the engine's commit protocol they ride on.
class VersionedCatalog {
 public:
  /// Metadata of one committed version.
  struct VersionInfo {
    uint64_t id = 0;
    std::string message;
    std::vector<std::string> table_names;
    uint64_t total_rows = 0;
  };

  VersionedCatalog() = default;

  VersionedCatalog(const VersionedCatalog&) = delete;
  VersionedCatalog& operator=(const VersionedCatalog&) = delete;

  /// The serving core. Bind an EvolutionEngine to this for SMO scripts;
  /// pin query snapshots with GetSnapshot().
  SnapshotCatalog* serving() { return &serving_; }
  const SnapshotCatalog& serving() const { return serving_; }

  /// Pins the current root for reading (one atomic load; never blocks).
  Snapshot GetSnapshot() const { return serving_.GetSnapshot(); }

  /// The apply-and-commit path for non-SMO mutation (CSV loads, test
  /// seeding): runs `fn` against a staged overlay of the current root
  /// and commits the recorded effects through the snapshot protocol.
  /// Nothing becomes visible if `fn` fails.
  Status Apply(const std::function<Status(TableStore&)>& fn);

  /// Replaces the served state wholesale (deserialized catalog, crash
  /// recovery image). Forced swap — no conflict detection; the history
  /// is untouched. Existing reader pins keep their old roots.
  void Reset(const Catalog& catalog) { serving_.Reset(catalog); }

  /// Snapshots the current root as a new version; returns its id (ids
  /// start at 1 and increase).
  uint64_t Commit(const std::string& message);

  /// Number of committed versions.
  size_t num_versions() const { return versions_.size(); }

  /// Metadata for every committed version, oldest first.
  std::vector<VersionInfo> History() const;

  /// A table as of a committed version.
  Result<std::shared_ptr<const Table>> GetTableAt(
      uint64_t version, const std::string& name) const;

  /// Table names as of a committed version.
  Result<std::vector<std::string>> TableNamesAt(uint64_t version) const;

  /// Swaps the served root back to the state of `version` (the history
  /// itself is untouched, so this models "git checkout"). Readers that
  /// pinned the abandoned timeline keep their snapshots.
  Status Checkout(uint64_t version);

  /// Storage accounting: bytes of unique column data reachable from all
  /// versions plus the served root (columns shared between versions
  /// counted once), and the bytes a naive copy-per-version scheme would
  /// hold.
  struct StorageStats {
    uint64_t unique_bytes = 0;
    uint64_t naive_bytes = 0;
  };
  StorageStats ComputeStorageStats() const;

 private:
  struct Version {
    std::string message;
    RootPtr root;  // shared with serving_'s root graph
  };

  Result<const Version*> FindVersion(uint64_t version) const;

  SnapshotCatalog serving_;
  std::vector<Version> versions_;
};

}  // namespace cods

#endif  // CODS_CONCURRENCY_VERSIONED_CATALOG_H_

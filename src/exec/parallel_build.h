// Parallel construction of a column's value bitmaps from a row → vid
// mapping — the shape shared by Column::FromVids, the mergence append
// step and the general mergence's output build: scan rows in order,
// append each row's bit to the builder of its value.
//
// The serial scan has a per-value sequential dependency (appends must
// arrive in increasing positions), so the parallel version splits the
// row range into group-aligned chunks, builds one partial builder set
// per chunk with chunk-relative positions, then concatenates the
// partials per value in chunk order. WahBitmap's canonical form
// guarantees the concatenation is bit-identical to the serial build:
// equal logical content implies equal code words.

#ifndef CODS_EXEC_PARALLEL_BUILD_H_
#define CODS_EXEC_PARALLEL_BUILD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bitmap/wah_bitmap.h"
#include "bitmap/wah_filter.h"
#include "exec/exec.h"
#include "storage/column.h"
#include "storage/dictionary.h"

namespace cods {

/// Builds `num_values` WAH bitmaps of `rows` bits each, where bitmap
/// `vid_of_row[r]` has bit r set (exactly one value per row; every
/// vid_of_row[r] < num_values). Maximal runs of rows mapping to the same
/// value append as a single fill. Bit-identical at every thread count.
std::vector<WahBitmap> BuildValueBitmaps(const ExecContext& ctx,
                                         const Vid* vid_of_row,
                                         uint64_t rows, uint64_t num_values);

/// Shrinks every value bitmap of `column` through `filter` (one task per
/// vid) and rebuilds the column at filter.num_positions() rows — the
/// position-filtering shape shared by SELECT, PARTITION TABLE and
/// DECOMPOSE. Requires a WAH-encoded column; `op_name` labels the error
/// otherwise. Bit-identical at every thread count.
Result<std::shared_ptr<const Column>> FilterColumnBitmaps(
    const ExecContext& ctx, const Column& column,
    const WahPositionFilter& filter, const std::string& op_name);

}  // namespace cods

#endif  // CODS_EXEC_PARALLEL_BUILD_H_

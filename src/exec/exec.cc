#include "exec/exec.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "exec/thread_pool.h"

namespace cods {

namespace {

std::atomic<int> g_default_threads{0};

int EnvThreads() {
  static const int env = [] {
    const char* s = std::getenv("CODS_THREADS");
    if (s != nullptr) {
      long v = std::strtol(s, nullptr, 10);
      if (v > 0 && v <= 1024) return static_cast<int>(v);
    }
    return 0;
  }();
  return env;
}

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  int global = g_default_threads.load(std::memory_order_relaxed);
  if (global > 0) return global;
  int env = EnvThreads();
  if (env > 0) return env;
  return HardwareThreads();
}

// Shared state of one parallel region. Held by shared_ptr so helper
// tasks that fire after the region already finished (every chunk was
// claimed by faster threads) find valid, exhausted state.
struct RegionState {
  uint64_t begin = 0;
  uint64_t end = 0;
  uint64_t chunk = 0;
  uint64_t num_chunks = 0;
  const std::function<Status(uint64_t, uint64_t)>* fn = nullptr;
  std::vector<Status> statuses;

  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> done{0};
  std::mutex mu;
  std::condition_variable cv;

  // Claims chunks until none remain. Each claimed chunk is run and its
  // Status recorded at the chunk's slot.
  void Drain() {
    for (;;) {
      uint64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      uint64_t lo = begin + c * chunk;
      uint64_t hi = lo + chunk < end ? lo + chunk : end;
      statuses[c] = (*fn)(lo, hi);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

ExecContext::ExecContext(int num_threads)
    : num_threads_(ResolveThreadCount(num_threads)) {}

void SetDefaultThreads(int n) {
  g_default_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

Status ParallelForChunked(
    const ExecContext& ctx, uint64_t begin, uint64_t end, uint64_t grain,
    const std::function<Status(uint64_t, uint64_t)>& fn) {
  if (begin >= end) return Status::OK();
  const uint64_t n = end - begin;
  if (grain == 0) grain = 1;
  const int threads = ctx.num_threads();
  // Serial fallback: plain loop, early exit on the first error — the
  // deterministic aggregation below returns the same Status.
  if (threads <= 1 || n <= grain) {
    for (uint64_t lo = begin; lo < end; lo += grain) {
      uint64_t hi = lo + grain < end ? lo + grain : end;
      CODS_RETURN_NOT_OK(fn(lo, hi));
    }
    return Status::OK();
  }

  // Chunking: enough chunks for load balance (4 per thread), but never
  // below the grain.
  uint64_t chunk = (n + static_cast<uint64_t>(threads) * 4 - 1) /
                   (static_cast<uint64_t>(threads) * 4);
  if (chunk < grain) chunk = grain;
  auto state = std::make_shared<RegionState>();
  state->begin = begin;
  state->end = end;
  state->chunk = chunk;
  state->num_chunks = (n + chunk - 1) / chunk;
  state->fn = &fn;
  state->statuses.assign(state->num_chunks, Status::OK());

  const uint64_t helpers_wanted = state->num_chunks - 1;
  const int helpers =
      static_cast<int>(helpers_wanted <
                               static_cast<uint64_t>(threads - 1)
                           ? helpers_wanted
                           : static_cast<uint64_t>(threads - 1));
  ThreadPool* pool = SharedPool(helpers);
  for (int i = 0; i < helpers; ++i) {
    pool->Submit([state] { state->Drain(); });
  }
  state->Drain();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) ==
             state->num_chunks;
    });
  }
  for (Status& st : state->statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

Status ParallelFor(const ExecContext& ctx, uint64_t begin, uint64_t end,
                   uint64_t grain,
                   const std::function<Status(uint64_t)>& fn) {
  return ParallelForChunked(
      ctx, begin, end, grain,
      [&fn](uint64_t lo, uint64_t hi) -> Status {
        for (uint64_t i = lo; i < hi; ++i) {
          CODS_RETURN_NOT_OK(fn(i));
        }
        return Status::OK();
      });
}

}  // namespace cods

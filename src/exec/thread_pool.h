// A fixed-size worker pool with a single shared task queue. The pool is
// deliberately minimal: tasks are type-erased thunks, there is no
// per-task future — completion tracking belongs to the caller (see
// ParallelFor in exec/exec.h, which drives workers through an atomic
// chunk cursor so the submitting thread participates in the work and
// nested parallel regions cannot deadlock on queue capacity).
//
// The process-wide pool used by the execution layer is obtained through
// SharedPool(); it is created lazily on first parallel use and grows (but
// never shrinks) to the largest helper count ever requested, so
// `num_threads = 1` execution paths never spawn a thread.

#ifndef CODS_EXEC_THREAD_POOL_H_
#define CODS_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cods {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);

  /// Drains nothing: queued tasks that never ran are dropped. Callers
  /// that need completion must track it themselves (ParallelFor does).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task for execution on some worker thread.
  void Submit(std::function<void()> task);

  /// Current worker count.
  int num_threads() const;

  /// Grows the pool to at least `n` workers (no-op when already there).
  void EnsureThreads(int n);

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

/// The lazily-initialized process-wide pool, grown to hold at least
/// `min_threads` workers. Never destroyed (workers idle at exit), so it
/// is safe to use from static destructors and leak-checkers still see it
/// as reachable.
ThreadPool* SharedPool(int min_threads);

}  // namespace cods

#endif  // CODS_EXEC_THREAD_POOL_H_

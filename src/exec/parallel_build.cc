#include "exec/parallel_build.h"

#include "common/logging.h"

namespace cods {

namespace {

// Serial reference: one ordered scan, maximal equal-value runs append as
// single fills. Used verbatim for the chunk-local partial builds.
void ScanIntoBuilders(const Vid* vid_of_row, uint64_t lo, uint64_t hi,
                      uint64_t base, std::vector<WahBitmap>* builders) {
  for (uint64_t r = lo; r < hi;) {
    Vid v = vid_of_row[r];
    uint64_t end = r + 1;
    while (end < hi && vid_of_row[end] == v) ++end;
    CODS_DCHECK(v < builders->size());
    WahBitmap& bm = (*builders)[v];
    bm.AppendRun(false, (r - base) - bm.size());
    bm.AppendRun(true, end - r);
    r = end;
  }
}

}  // namespace

std::vector<WahBitmap> BuildValueBitmaps(const ExecContext& ctx,
                                         const Vid* vid_of_row,
                                         uint64_t rows, uint64_t num_values) {
  std::vector<WahBitmap> out(num_values);
  if (rows == 0) return out;

  // Pick a chunk size: ~4 chunks per thread, 63-group-aligned so the
  // final concatenation splices code words, and capped so the transient
  // partial-builder matrix (num_chunks × num_values headers) stays small
  // even for very high-cardinality columns.
  const uint64_t threads = static_cast<uint64_t>(ctx.num_threads());
  uint64_t num_chunks = threads * 4;
  constexpr uint64_t kMaxPartialHeaders = uint64_t{1} << 22;
  if (num_values > 0 && num_chunks > kMaxPartialHeaders / num_values) {
    num_chunks = kMaxPartialHeaders / num_values;
  }
  if (num_chunks < 2 || ctx.serial() || rows < 4 * kWahGroupBits * threads) {
    ScanIntoBuilders(vid_of_row, 0, rows, 0, &out);
    for (WahBitmap& bm : out) bm.AppendRun(false, rows - bm.size());
    return out;
  }
  uint64_t chunk = (rows + num_chunks - 1) / num_chunks;
  chunk = (chunk + kWahGroupBits - 1) / kWahGroupBits * kWahGroupBits;
  num_chunks = (rows + chunk - 1) / chunk;

  std::vector<std::vector<WahBitmap>> partials(num_chunks);
  Status st = ParallelFor(
      ctx, 0, num_chunks, 1, [&](uint64_t c) -> Status {
        uint64_t lo = c * chunk;
        uint64_t hi = lo + chunk < rows ? lo + chunk : rows;
        std::vector<WahBitmap> local(num_values);
        ScanIntoBuilders(vid_of_row, lo, hi, lo, &local);
        // Pad every builder to the chunk length so the concatenation
        // below needs no per-chunk bookkeeping.
        for (WahBitmap& bm : local) bm.AppendRun(false, (hi - lo) - bm.size());
        partials[c] = std::move(local);
        return Status::OK();
      });
  CODS_CHECK(st.ok()) << st.ToString();
  st = ParallelFor(ctx, 0, num_values, 64, [&](uint64_t v) -> Status {
    for (uint64_t c = 0; c < num_chunks; ++c) {
      out[v].Concat(partials[c][v]);
    }
    return Status::OK();
  });
  CODS_CHECK(st.ok()) << st.ToString();
  return out;
}

Result<std::shared_ptr<const Column>> FilterColumnBitmaps(
    const ExecContext& ctx, const Column& column,
    const WahPositionFilter& filter, const std::string& op_name) {
  if (column.encoding() != ColumnEncoding::kWahBitmap) {
    return Status::InvalidArgument(op_name +
                                   " requires WAH-encoded columns");
  }
  std::vector<ValueBitmap> filtered(column.distinct_count());
  CODS_RETURN_NOT_OK(
      ParallelFor(ctx, 0, column.distinct_count(), 16, [&](uint64_t v) {
        filtered[v] = CodecFilter(filter, column.bitmap(static_cast<Vid>(v)));
        return Status::OK();
      }));
  return std::shared_ptr<const Column>(
      Column::FromValueBitmaps(column.type(), column.dict(),
                               std::move(filtered), filter.num_positions()));
}

}  // namespace cods

#include "exec/parallel_build.h"

#include <atomic>

#include "bitmap/codec.h"
#include "common/logging.h"
#include "storage/table.h"

namespace cods {

namespace {

// Serial reference: one ordered scan, maximal equal-value runs append as
// single fills. Used verbatim for the chunk-local partial builds.
void ScanIntoBuilders(const Vid* vid_of_row, uint64_t lo, uint64_t hi,
                      uint64_t base, std::vector<WahBitmap>* builders) {
  for (uint64_t r = lo; r < hi;) {
    Vid v = vid_of_row[r];
    uint64_t end = r + 1;
    while (end < hi && vid_of_row[end] == v) ++end;
    CODS_DCHECK(v < builders->size());
    WahBitmap& bm = (*builders)[v];
    bm.AppendRun(false, (r - base) - bm.size());
    bm.AppendRun(true, end - r);
    r = end;
  }
}

}  // namespace

std::vector<WahBitmap> BuildValueBitmaps(const ExecContext& ctx,
                                         const Vid* vid_of_row,
                                         uint64_t rows, uint64_t num_values) {
  std::vector<WahBitmap> out(num_values);
  if (rows == 0) return out;

  // Pick a chunk size: ~4 chunks per thread, 63-group-aligned so the
  // final concatenation splices code words, and capped so the transient
  // partial-builder matrix (num_chunks × num_values headers) stays small
  // even for very high-cardinality columns.
  const uint64_t threads = static_cast<uint64_t>(ctx.num_threads());
  uint64_t num_chunks = threads * 4;
  constexpr uint64_t kMaxPartialHeaders = uint64_t{1} << 22;
  if (num_values > 0 && num_chunks > kMaxPartialHeaders / num_values) {
    num_chunks = kMaxPartialHeaders / num_values;
  }
  if (num_chunks < 2 || ctx.serial() || rows < 4 * kWahGroupBits * threads) {
    ScanIntoBuilders(vid_of_row, 0, rows, 0, &out);
    for (WahBitmap& bm : out) bm.AppendRun(false, rows - bm.size());
    return out;
  }
  uint64_t chunk = (rows + num_chunks - 1) / num_chunks;
  chunk = (chunk + kWahGroupBits - 1) / kWahGroupBits * kWahGroupBits;
  num_chunks = (rows + chunk - 1) / chunk;

  std::vector<std::vector<WahBitmap>> partials(num_chunks);
  Status st = ParallelFor(
      ctx, 0, num_chunks, 1, [&](uint64_t c) -> Status {
        uint64_t lo = c * chunk;
        uint64_t hi = lo + chunk < rows ? lo + chunk : rows;
        std::vector<WahBitmap> local(num_values);
        ScanIntoBuilders(vid_of_row, lo, hi, lo, &local);
        // Pad every builder to the chunk length so the concatenation
        // below needs no per-chunk bookkeeping.
        for (WahBitmap& bm : local) bm.AppendRun(false, (hi - lo) - bm.size());
        partials[c] = std::move(local);
        return Status::OK();
      });
  CODS_CHECK(st.ok()) << st.ToString();
  st = ParallelFor(ctx, 0, num_values, 64, [&](uint64_t v) -> Status {
    for (uint64_t c = 0; c < num_chunks; ++c) {
      out[v].Concat(partials[c][v]);
    }
    return Status::OK();
  });
  CODS_CHECK(st.ok()) << st.ToString();
  return out;
}

Result<std::shared_ptr<const Column>> FilterColumnBitmaps(
    const ExecContext& ctx, const Column& column,
    const WahPositionFilter& filter, const std::string& op_name) {
  if (column.encoding() != ColumnEncoding::kWahBitmap) {
    return Status::InvalidArgument(op_name +
                                   " requires WAH-encoded columns");
  }
  std::vector<ValueBitmap> filtered(column.distinct_count());
  CODS_RETURN_NOT_OK(
      ParallelFor(ctx, 0, column.distinct_count(), 16, [&](uint64_t v) {
        filtered[v] = CodecFilter(filter, column.bitmap(static_cast<Vid>(v)));
        return Status::OK();
      }));
  return std::shared_ptr<const Column>(
      Column::FromValueBitmaps(column.type(), column.dict(),
                               std::move(filtered), filter.num_positions()));
}

// ---------------------------------------------------------------------------
// Exec-using members of storage::Column. Column sits below exec in the
// layering, so its header only forward-declares ExecContext and the
// definitions that actually run on the parallel runtime live here.
// ---------------------------------------------------------------------------

namespace {

// Re-encodes freshly built WAH bitmaps into their density-chosen codec
// containers, one task per value. The per-vid results land in pre-sized
// index-ordered slots and the representation choice is a pure function
// of content, so the conversion is bit-identical at every thread count.
std::vector<ValueBitmap> EncodeValueBitmaps(const ExecContext& ctx,
                                            std::vector<WahBitmap> wahs) {
  std::vector<ValueBitmap> out(wahs.size());
  Status st = ParallelFor(ctx, 0, wahs.size(), 16, [&](uint64_t v) {
    out[v] = ValueBitmap::FromWah(std::move(wahs[v]));
    return Status::OK();
  });
  CODS_CHECK(st.ok()) << st.ToString();
  return out;
}

}  // namespace

std::shared_ptr<Column> Column::FromVids(DataType type, Dictionary dict,
                                         const std::vector<Vid>& vids,
                                         const ExecContext* ctx) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = type;
  col->encoding_ = ColumnEncoding::kWahBitmap;
  col->rows_ = vids.size();
  const ExecContext& exec = ResolveContext(ctx);
  col->bitmaps_ = EncodeValueBitmaps(
      exec, BuildValueBitmaps(exec, vids.data(), vids.size(), dict.size()));
  col->dict_ = std::move(dict);
  return col;
}

std::shared_ptr<Column> Column::FromBitmaps(DataType type, Dictionary dict,
                                            std::vector<WahBitmap> bitmaps,
                                            uint64_t rows,
                                            const ExecContext* ctx) {
  CODS_CHECK(bitmaps.size() == dict.size())
      << "bitmap count " << bitmaps.size() << " != dictionary size "
      << dict.size();
  return FromValueBitmaps(
      type, std::move(dict),
      EncodeValueBitmaps(ResolveContext(ctx), std::move(bitmaps)), rows);
}

std::vector<Vid> Column::DecodeVids(const ExecContext* ctx) const {
  if (encoding_ == ColumnEncoding::kRle) {
    return rle_.Decode();
  }
  std::vector<Vid> out(rows_, 0);
  // Value bitmaps partition the row set, so the per-vid writes target
  // disjoint positions — safe to run concurrently, identical result.
  Status st = ParallelFor(
      ResolveContext(ctx), 0, bitmaps_.size(), 16, [&](uint64_t vid) {
        bitmaps_[vid].ForEachSetBit(
            [&](uint64_t pos) { out[pos] = static_cast<Vid>(vid); });
        return Status::OK();
      });
  CODS_CHECK(st.ok()) << st.ToString();
  return out;
}

Status Table::ValidateInvariants(const ExecContext* ctx) const {
  if (columns_.size() != schema_.num_columns()) {
    return Status::Corruption("schema arity mismatch");
  }
  // Per-column validation is independent; ParallelFor returns the first
  // failing column in schema order, matching the serial walk.
  ExecContext exec = ResolveContext(ctx);
  return ParallelFor(exec, 0, columns_.size(), 1, [&](uint64_t i) -> Status {
    if (columns_[i]->rows() != rows_) {
      return Status::Corruption("column row count mismatch in '" +
                                schema_.column(i).name + "'");
    }
    return columns_[i]->ValidateInvariants(&exec).WithContext(
        "column '" + schema_.column(i).name + "'");
  });
}

Status Column::ValidateInvariants(const ExecContext* ctx) const {
  if (encoding_ == ColumnEncoding::kRle) {
    if (rle_.size() != rows_) {
      return Status::Corruption("RLE length != row count");
    }
    for (const RleVector::Run& r : rle_.runs()) {
      if (r.value >= dict_.size()) {
        return Status::Corruption("RLE vid outside dictionary");
      }
    }
    return Status::OK();
  }
  if (bitmaps_.size() != dict_.size()) {
    return Status::Corruption("bitmap count != dictionary size");
  }
  // Per-bitmap structural + canonical-representation check and popcount,
  // parallel over value bitmaps. The sum is order-independent, so a
  // relaxed atomic accumulation stays deterministic.
  std::atomic<uint64_t> ones{0};
  CODS_RETURN_NOT_OK(ParallelForChunked(
      ResolveContext(ctx), 0, bitmaps_.size(), 16,
      [&](uint64_t lo, uint64_t hi) -> Status {
        uint64_t local = 0;
        for (uint64_t v = lo; v < hi; ++v) {
          CODS_RETURN_NOT_OK(bitmaps_[v].Validate(rows_));
          local += bitmaps_[v].CountOnes();
        }
        ones.fetch_add(local, std::memory_order_relaxed);
        return Status::OK();
      }));
  uint64_t total_ones = ones.load(std::memory_order_relaxed);
  if (total_ones != rows_) {
    return Status::Corruption("bitmaps do not partition rows: " +
                              std::to_string(total_ones) + " ones over " +
                              std::to_string(rows_) + " rows");
  }
  // Coverage = |union of all value bitmaps|, computed by the count-only
  // k-way codec kernel in one pass — the union bitmap is never
  // materialized.
  std::vector<const ValueBitmap*> ptrs;
  ptrs.reserve(bitmaps_.size());
  for (const ValueBitmap& bm : bitmaps_) ptrs.push_back(&bm);
  if (CodecOrManyCount(ptrs, rows_) != rows_) {
    return Status::Corruption("bitmaps overlap or leave gaps");
  }
  return Status::OK();
}

}  // namespace cods

// The parallel execution layer. CODS's data-level evolution and its
// query kernels operate column-at-a-time (and, within a column, value-
// bitmap-at-a-time), so the natural unit of parallelism is an index
// range over independent columns / value ids / row chunks. ParallelFor
// is that primitive; ExecContext carries the thread count.
//
// Determinism contract: every parallel region in this codebase writes
// results into pre-sized slots indexed by loop index and merges them in
// index order, so the output of any rewired path is BIT-IDENTICAL to
// serial execution at every thread count. `num_threads == 1` is a
// strictly serial fallback that never touches the pool or spawns a
// thread.
//
// Scheduling: the chunk list is driven by an atomic cursor. The calling
// thread participates in the work alongside up to num_threads-1 helpers
// submitted to the shared pool, which makes nested ParallelFor calls
// safe — an inner region running on a pool worker drains its own chunks
// even when every other worker is busy.
//
// Error handling: each chunk produces a Status; the first non-OK Status
// in CHUNK INDEX ORDER is returned (all chunks always run), so error
// results are as deterministic as success results.

#ifndef CODS_EXEC_EXEC_H_
#define CODS_EXEC_EXEC_H_

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace cods {

/// Execution parameters for the parallel kernels. Cheap to copy.
class ExecContext {
 public:
  /// `num_threads <= 0` resolves the default: the CODS_THREADS
  /// environment variable if set and positive, SetDefaultThreads() if
  /// called, otherwise std::thread::hardware_concurrency().
  explicit ExecContext(int num_threads = 0);

  int num_threads() const { return num_threads_; }
  /// True when execution must be strictly serial (no pool involvement).
  bool serial() const { return num_threads_ == 1; }

 private:
  int num_threads_;
};

/// Overrides the process-wide default thread count (0 restores the
/// CODS_THREADS / hardware default). Thread-safe.
void SetDefaultThreads(int n);

/// Resolves an optional context pointer: nullptr means "default".
inline ExecContext ResolveContext(const ExecContext* ctx) {
  return ctx != nullptr ? *ctx : ExecContext();
}

/// Runs fn(chunk_begin, chunk_end) over [begin, end) split into chunks
/// of at least `grain` indices, distributed over ctx.num_threads()
/// threads (the caller included). Returns the first non-OK Status in
/// chunk order, running every chunk regardless of failures.
Status ParallelForChunked(
    const ExecContext& ctx, uint64_t begin, uint64_t end, uint64_t grain,
    const std::function<Status(uint64_t, uint64_t)>& fn);

/// Per-index convenience over ParallelForChunked: fn(i) for i in
/// [begin, end), grouped into grain-sized chunks.
Status ParallelFor(const ExecContext& ctx, uint64_t begin, uint64_t end,
                   uint64_t grain, const std::function<Status(uint64_t)>& fn);

}  // namespace cods

#endif  // CODS_EXEC_EXEC_H_

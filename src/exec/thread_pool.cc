#include "exec/thread_pool.h"

#include "common/logging.h"

namespace cods {

ThreadPool::ThreadPool(int num_threads) {
  CODS_CHECK(num_threads >= 1);
  std::lock_guard<std::mutex> lock(mu_);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CODS_CHECK(!shutdown_) << "Submit on a shut-down ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::EnsureThreads(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(threads_.size()) < n) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool* SharedPool(int min_threads) {
  // Leaked on purpose: workers must outlive every static object that
  // might run parallel work during teardown.
  static ThreadPool* pool = new ThreadPool(min_threads < 1 ? 1 : min_threads);
  pool->EnsureThreads(min_threads);
  return pool;
}

}  // namespace cods

#include "exec/task_graph.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "exec/thread_pool.h"

namespace cods {

// Shared state of one Run. Held by shared_ptr so helper tasks that fire
// after the run already finished (every graph task was claimed by faster
// threads) find valid, exhausted state — the same lifetime pattern as
// ParallelFor's RegionState. A helper dereferences `graph` only after
// popping a task id, and a popped task always finishes before Run
// returns, so the graph itself is alive whenever it is touched.
struct TaskGraph::RunState {
  TaskGraph* graph = nullptr;
  ThreadPool* pool = nullptr;  // null: serial run, pool untouched

  // Lock-free per-task scheduling state.
  std::vector<std::atomic<int>> pending;      // unfinished dependencies
  std::vector<std::atomic<int>> poisoned_by;  // failing dep id, or -1
  std::vector<double> seconds;                // per-task run time (slots)
  std::atomic<int> helper_slots{0};           // free helper budget
  std::atomic<int> in_flight{0};
  std::atomic<int> max_parallel{0};
  std::atomic<uint64_t> ran{0};
  std::atomic<uint64_t> skipped{0};

  // Ready queue and completion tracking.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> ready;
  uint64_t completed = 0;
  bool all_done = false;

  explicit RunState(size_t n)
      : pending(n), poisoned_by(n), seconds(n, 0.0) {
    for (auto& p : poisoned_by) p.store(-1, std::memory_order_relaxed);
  }
};

// The caller's loop: parks on the queue between bursts, returns only
// when the whole run is complete. `graph` is dereferenced only while a
// popped task is outstanding, which keeps Run() from returning.
void TaskGraph::DrainReadyQueue(const std::shared_ptr<RunState>& st) {
  std::unique_lock<std::mutex> lock(st->mu);
  for (;;) {
    st->cv.wait(lock, [&] { return st->all_done || !st->ready.empty(); });
    if (st->ready.empty()) return;  // all_done
    int id = st->ready.front();
    st->ready.pop_front();
    lock.unlock();
    st->graph->ExecuteTask(st.get(), id);
    MaybeSubmitHelpers(st);
    lock.lock();
  }
}

// A pool helper's loop: never parks — when the queue runs dry it frees
// its slot and returns, handing its pool worker back to whatever nested
// ParallelFor regions the running tasks spawn. Completing a task that
// readies successors re-submits helpers for them.
void TaskGraph::HelperDrain(const std::shared_ptr<RunState>& st) {
  for (;;) {
    int id;
    {
      std::lock_guard<std::mutex> lock(st->mu);
      if (st->ready.empty()) break;
      id = st->ready.front();
      st->ready.pop_front();
    }
    st->graph->ExecuteTask(st.get(), id);
    MaybeSubmitHelpers(st);
  }
  st->helper_slots.fetch_add(1, std::memory_order_relaxed);
}

void TaskGraph::MaybeSubmitHelpers(const std::shared_ptr<RunState>& st) {
  if (st->pool == nullptr) return;
  size_t waiting;
  {
    std::lock_guard<std::mutex> lock(st->mu);
    waiting = st->ready.size();
  }
  while (waiting > 0) {
    int slots = st->helper_slots.load(std::memory_order_relaxed);
    if (slots <= 0) return;
    if (!st->helper_slots.compare_exchange_weak(
            slots, slots - 1, std::memory_order_relaxed)) {
      continue;
    }
    st->pool->Submit([st] { HelperDrain(st); });
    --waiting;
  }
}

int TaskGraph::AddTask(TaskFn fn, std::string label) {
  CODS_CHECK(!ran_) << "TaskGraph mutated after Run";
  CODS_CHECK(fn != nullptr);
  tasks_.push_back(Task{std::move(fn), std::move(label), {}, 0});
  return static_cast<int>(tasks_.size()) - 1;
}

void TaskGraph::AddDependency(int task, int dependency) {
  CODS_CHECK(!ran_) << "TaskGraph mutated after Run";
  CODS_CHECK(task >= 0 && static_cast<size_t>(task) < tasks_.size());
  CODS_CHECK(dependency >= 0 &&
             static_cast<size_t>(dependency) < tasks_.size());
  CODS_CHECK(task != dependency) << "task depends on itself";
  tasks_[static_cast<size_t>(dependency)].dependents.push_back(task);
  tasks_[static_cast<size_t>(task)].num_deps += 1;
  stats_.edges += 1;
}

const Status& TaskGraph::task_status(int id) const {
  CODS_CHECK(id >= 0 && static_cast<size_t>(id) < statuses_.size());
  return statuses_[static_cast<size_t>(id)];
}

void TaskGraph::ExecuteTask(RunState* st, int id) {
  const size_t i = static_cast<size_t>(id);
  int cur = st->in_flight.fetch_add(1, std::memory_order_relaxed) + 1;
  int prev = st->max_parallel.load(std::memory_order_relaxed);
  while (cur > prev &&
         !st->max_parallel.compare_exchange_weak(
             prev, cur, std::memory_order_relaxed)) {
  }

  int poison = st->poisoned_by[i].load(std::memory_order_acquire);
  if (poison >= 0) {
    std::string who = "task #" + std::to_string(poison);
    const std::string& label = tasks_[static_cast<size_t>(poison)].label;
    if (!label.empty()) who += " (" + label + ")";
    statuses_[i] = Status::Cancelled("skipped: dependency " + who +
                                     " did not succeed");
    st->skipped.fetch_add(1, std::memory_order_relaxed);
  } else {
    // cods-lint: allow(wall-clock): per-task runtime feeds TaskGraphStats
    // only; it never influences scheduling order or results.
    auto t0 = std::chrono::steady_clock::now();
    statuses_[i] = tasks_[i].fn();
    // cods-lint: allow(wall-clock): stats only, see above.
    st->seconds[i] = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    st->ran.fetch_add(1, std::memory_order_relaxed);
  }
  st->in_flight.fetch_sub(1, std::memory_order_relaxed);

  // Unblock dependents: a failed or skipped task poisons them (first
  // poisoner wins), and whoever completes a dependent's last dependency
  // schedules it.
  const bool ok = statuses_[i].ok();
  std::vector<int> newly_ready;
  for (int d : tasks_[i].dependents) {
    const size_t di = static_cast<size_t>(d);
    if (!ok) {
      int expected = -1;
      st->poisoned_by[di].compare_exchange_strong(
          expected, id, std::memory_order_release);
    }
    if (st->pending[di].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      newly_ready.push_back(d);
    }
  }
  {
    std::lock_guard<std::mutex> lock(st->mu);
    for (int d : newly_ready) st->ready.push_back(d);
    st->completed += 1;
    if (st->completed == tasks_.size()) {
      st->all_done = true;
      st->cv.notify_all();
    } else if (!newly_ready.empty()) {
      st->cv.notify_all();
    }
  }
}

Status TaskGraph::Run(const ExecContext& ctx) {
  CODS_CHECK(!ran_) << "TaskGraph::Run called twice";
  ran_ = true;
  const size_t n = tasks_.size();
  statuses_.assign(n, Status::OK());
  stats_.tasks = n;
  stats_.threads = ctx.num_threads();
  stats_.max_parallel = 0;
  if (n == 0) return Status::OK();
  // cods-lint: allow(wall-clock): wall time feeds TaskGraphStats only.
  const auto wall0 = std::chrono::steady_clock::now();

  // Cycle check (Kahn's algorithm) before anything executes: a cyclic
  // graph would otherwise stall with a permanently empty ready queue.
  {
    std::vector<int> indegree(n);
    std::deque<int> frontier;
    for (size_t i = 0; i < n; ++i) {
      indegree[i] = tasks_[i].num_deps;
      if (indegree[i] == 0) frontier.push_back(static_cast<int>(i));
    }
    size_t seen = 0;
    while (!frontier.empty()) {
      int id = frontier.front();
      frontier.pop_front();
      ++seen;
      for (int d : tasks_[static_cast<size_t>(id)].dependents) {
        if (--indegree[static_cast<size_t>(d)] == 0) frontier.push_back(d);
      }
    }
    if (seen < n) {
      return Status::InvalidArgument(
          "task graph has a cycle (" + std::to_string(n - seen) +
          " of " + std::to_string(n) + " tasks unreachable)");
    }
  }

  auto st = std::make_shared<RunState>(n);
  st->graph = this;
  {
    std::lock_guard<std::mutex> lock(st->mu);
    for (size_t i = 0; i < n; ++i) {
      st->pending[i].store(tasks_[i].num_deps, std::memory_order_relaxed);
      if (tasks_[i].num_deps == 0) st->ready.push_back(static_cast<int>(i));
    }
  }

  const int threads = ctx.num_threads();
  if (threads > 1 && n > 1) {
    const size_t budget_wanted = n - 1;
    const int budget = static_cast<int>(
        budget_wanted < static_cast<size_t>(threads - 1)
            ? budget_wanted
            : static_cast<size_t>(threads - 1));
    st->pool = SharedPool(budget);
    st->helper_slots.store(budget, std::memory_order_relaxed);
    MaybeSubmitHelpers(st);
  }
  // The caller participates (and is the only worker in the serial case,
  // where the queue drain is a deterministic topological order and the
  // pool is never touched).
  DrainReadyQueue(st);

  stats_.ran = st->ran.load(std::memory_order_relaxed);
  stats_.skipped = st->skipped.load(std::memory_order_relaxed);
  stats_.max_parallel = st->max_parallel.load(std::memory_order_relaxed);
  stats_.task_seconds = 0;
  for (double s : st->seconds) stats_.task_seconds += s;
  // cods-lint: allow(wall-clock): wall time feeds TaskGraphStats only.
  stats_.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall0)
                            .count();

  for (size_t i = 0; i < n; ++i) {
    if (!statuses_[i].ok()) {
      std::string where = "task #" + std::to_string(i);
      if (!tasks_[i].label.empty()) where += " (" + tasks_[i].label + ")";
      return statuses_[i].WithContext(where);
    }
  }
  return Status::OK();
}

}  // namespace cods

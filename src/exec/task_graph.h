// A dependency-DAG task scheduler on the shared ThreadPool — the
// inter-operator counterpart of ParallelFor (exec/exec.h). ParallelFor
// overlaps the grains *inside* one operator; TaskGraph overlaps whole
// tasks (e.g. the independent SMOs of an evolution script, as planned by
// plan/script_planner.h) whose dependencies form a DAG.
//
// Scheduling: tasks whose dependencies have all finished sit in a ready
// queue drained by up to num_threads workers — the calling thread
// participates alongside helpers submitted to the shared pool, exactly
// like ParallelFor, so a TaskGraph run nested inside a pool worker (or
// tasks that themselves call ParallelFor) cannot deadlock. Helpers are
// submitted against the tasks actually waiting (up to num_threads - 1
// at once) and RETURN when the queue runs dry rather than parking on
// it, so on dependency-chain sections the pool workers stay free for
// the running task's own ParallelFor grains; completing a task that
// readies successors submits fresh helpers for them. With
// num_threads == 1 the graph runs strictly serially in a deterministic
// topological order and never touches the pool.
//
// Error handling (the ParallelFor determinism contract, lifted to DAGs):
// every task whose dependencies all succeeded runs; a task downstream of
// a failure is skipped with StatusCode::kCancelled (its outputs would
// depend on state the failed task never produced). Run() returns the
// first non-OK task status in TASK INDEX ORDER, which — because edges
// only point from lower to higher indices in planner-built graphs — is
// always the root failure, never a propagated skip.

#ifndef CODS_EXEC_TASK_GRAPH_H_
#define CODS_EXEC_TASK_GRAPH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/exec.h"

namespace cods {

/// Execution statistics of one TaskGraph::Run — the overlap evidence
/// the script benchmarks and the shell's .runplan report.
struct TaskGraphStats {
  uint64_t tasks = 0;       ///< tasks in the graph
  uint64_t edges = 0;       ///< dependency edges
  uint64_t ran = 0;         ///< tasks whose function actually executed
  uint64_t skipped = 0;     ///< tasks skipped because a dependency failed
  int threads = 0;          ///< worker width of the run
  int max_parallel = 0;     ///< peak tasks simultaneously in flight
  double wall_seconds = 0;  ///< wall-clock time of Run()
  double task_seconds = 0;  ///< sum of per-task execution times
};

/// A one-shot dependency DAG of Status-returning tasks. Build with
/// AddTask/AddDependency, execute once with Run, then inspect per-task
/// statuses and stats.
class TaskGraph {
 public:
  using TaskFn = std::function<Status()>;

  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a task; ids are dense and assigned in call order. `label`
  /// annotates error contexts ("task #2 (DECOMPOSE TABLE)").
  int AddTask(TaskFn fn, std::string label = {});

  /// Declares that `task` must not start before `dependency` finished.
  /// Both ids must exist and differ.
  void AddDependency(int task, int dependency);

  size_t num_tasks() const { return tasks_.size(); }

  /// Executes the graph with ctx.num_threads() workers (the caller
  /// included). Blocks until every runnable task finished. Returns
  /// InvalidArgument (running nothing) if the graph has a cycle,
  /// otherwise the first non-OK task status in task index order, OK if
  /// all succeeded. Must be called at most once.
  Status Run(const ExecContext& ctx);

  /// Statistics of the completed run.
  const TaskGraphStats& stats() const { return stats_; }

  /// Status of one task after Run: its function's return value, or
  /// kCancelled if it was skipped because a dependency failed.
  const Status& task_status(int id) const;

 private:
  struct Task {
    TaskFn fn;
    std::string label;
    std::vector<int> dependents;  // edges out of this task
    int num_deps = 0;             // edges into this task
  };

  struct RunState;

  // Caller's drain: executes ready tasks, parking on the queue between
  // bursts, until the whole run completes.
  static void DrainReadyQueue(const std::shared_ptr<RunState>& st);

  // Pool helper's drain: executes ready tasks and RETURNS when the
  // queue is empty, releasing its helper slot (and its pool worker).
  static void HelperDrain(const std::shared_ptr<RunState>& st);

  // Submits pool helpers for waiting ready tasks, bounded by the free
  // helper slots.
  static void MaybeSubmitHelpers(const std::shared_ptr<RunState>& st);

  // Executes or skips one ready task and unblocks its dependents.
  void ExecuteTask(RunState* st, int id);

  std::vector<Task> tasks_;
  std::vector<Status> statuses_;
  TaskGraphStats stats_;
  bool ran_ = false;
};

}  // namespace cods

#endif  // CODS_EXEC_TASK_GRAPH_H_

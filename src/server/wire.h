// The CODS wire protocol: length-prefixed, CRC32C-checksummed frames in
// the BLIP style — a tiny binary framing layer under which every
// message is a typed payload. One frame is:
//
//   u32 LE  payload length (>= kMinPayloadBytes)
//   u32 LE  masked CRC32C of the payload (common/crc32c.h Mask form,
//           so a frame quoting frame bytes cannot self-checksum)
//   bytes   payload = u8 frame type | u64 LE request id | body
//
// Every request carries a client-chosen request id and every response
// echoes it, so responses may arrive out of order (the two-lane
// admission scheduler reorders point results ahead of heavy ones) and
// the client matches them by id, not by position.
//
// The decoder is incremental and hostile-input safe: torn frames ask
// for more bytes, oversized length prefixes and CRC mismatches are
// clean typed errors (the connection is then closed by the caller),
// and no input can make it read out of bounds — properties the seeded
// fuzz loop in tests/test_server.cc exercises.

#ifndef CODS_SERVER_WIRE_H_
#define CODS_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/value.h"

namespace cods {

struct QueryResult;  // query/query_engine.h
class Table;         // storage/table.h

namespace server {

/// Protocol version exchanged in HELLO; bumped on incompatible change.
inline constexpr uint32_t kProtocolVersion = 1;

/// Frame header: length + masked CRC.
inline constexpr size_t kFrameHeaderBytes = 8;
/// Smallest legal payload: type byte + request id.
inline constexpr size_t kMinPayloadBytes = 9;
/// Default cap on payload length; a larger prefix is a protocol error,
/// not an allocation.
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

/// Frame types. Requests (client -> server) are < 16, responses >= 16.
enum class FrameType : uint8_t {
  // Requests.
  kHello = 1,          // u32 protocol version
  kExecute = 2,        // length-prefixed statement text
  kPrepare = 3,        // length-prefixed statement text with $n params
  kExecPrepared = 4,   // u64 stmt id, u32 n, n Values
  kClosePrepared = 5,  // u64 stmt id
  kPing = 6,           // empty
  kGoodbye = 7,        // empty
  // Responses.
  kHelloOk = 16,      // u32 protocol version, u64 session id
  kResultOk = 17,     // length-prefixed message (SMO ack, goodbye ack)
  kResultTable = 18,  // schema + rows of a SELECT
  kResultCount = 19,  // u64 count
  kResultGroups = 20, // GROUP BY header + rows
  kError = 21,        // u32 wire error code, length-prefixed message
  kPong = 22,         // empty
  kPrepareOk = 23,    // u64 stmt id, u32 n_params
};

const char* FrameTypeToString(FrameType type);

// ---- StatusCode <-> wire error code -------------------------------------
//
// Wire codes are a stable contract independent of the StatusCode enum
// values; both directions are exhaustive switches so a newly added
// StatusCode fails to compile here (-Werror=switch in spirit; the
// coverage test in tests/test_server.cc enumerates every code).

/// The wire error code for a status code. kOk maps to 0.
uint32_t WireErrorCode(StatusCode code);

/// Inverse of WireErrorCode. Unknown wire codes (a newer peer) decode
/// to kCorruption with `*known = false`.
StatusCode StatusCodeFromWire(uint32_t wire, bool* known = nullptr);

// ---- Primitive codec ----------------------------------------------------

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
void PutLengthPrefixed(std::string* dst, std::string_view s);
/// Tagged Value: u8 tag (0 null, 1 int64, 2 double bits, 3 string).
void PutValue(std::string* dst, const Value& v);

/// Each Get* consumes from the front of `*in`; returns false (leaving
/// `*in` unspecified) on truncated or malformed input.
bool GetFixed32(std::string_view* in, uint32_t* v);
bool GetFixed64(std::string_view* in, uint64_t* v);
bool GetLengthPrefixed(std::string_view* in, std::string_view* s);
bool GetValue(std::string_view* in, Value* v);

// ---- Framing ------------------------------------------------------------

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  std::string body;  // payload after type + request id
};

/// Appends the encoded frame for (type, request_id, body) to `*dst`.
void EncodeFrame(std::string* dst, FrameType type, uint64_t request_id,
                 std::string_view body);

enum class DecodeStatus {
  kFrame,     // one frame decoded, *consumed bytes eaten
  kNeedMore,  // buffer holds a prefix of a valid frame
  kError,     // protocol violation; close the connection
};

/// Incremental decode of the first frame in `buf`. On kFrame, fills
/// `*frame` and sets `*consumed`; on kError, fills `*error` with a
/// typed status (kInvalidArgument for an impossible length prefix,
/// kCorruption for a checksum mismatch). Never reads past buf.
DecodeStatus DecodeFrame(std::string_view buf, size_t max_frame_bytes,
                         Frame* frame, size_t* consumed, Status* error);

// ---- Typed requests / responses -----------------------------------------

/// A decoded request frame, all variants flattened.
struct WireRequest {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  uint32_t protocol = 0;       // kHello
  std::string text;            // kExecute / kPrepare
  uint64_t stmt_id = 0;        // kExecPrepared / kClosePrepared
  std::vector<Value> params;   // kExecPrepared
};

/// Decodes a request frame's body. Errors on response-typed frames and
/// on malformed bodies (kInvalidArgument).
Result<WireRequest> DecodeRequest(const Frame& frame);

std::string EncodeHello(uint64_t request_id);
std::string EncodeExecute(uint64_t request_id, std::string_view text);
std::string EncodePrepare(uint64_t request_id, std::string_view text);
std::string EncodeExecPrepared(uint64_t request_id, uint64_t stmt_id,
                               const std::vector<Value>& params);
std::string EncodeClosePrepared(uint64_t request_id, uint64_t stmt_id);
std::string EncodePing(uint64_t request_id);
std::string EncodeGoodbye(uint64_t request_id);

/// A decoded response frame, all variants flattened.
struct WireResponse {
  FrameType type = FrameType::kPong;
  uint64_t request_id = 0;

  Status error;                 // kError: the typed remote status
  std::string message;          // kResultOk
  uint64_t count = 0;           // kResultCount
  uint32_t protocol = 0;        // kHelloOk
  uint64_t session_id = 0;      // kHelloOk
  uint64_t stmt_id = 0;         // kPrepareOk
  uint32_t n_params = 0;        // kPrepareOk

  // kResultTable: schema + materialized rows.
  std::vector<std::string> columns;
  std::vector<DataType> types;
  std::vector<Row> rows;

  // kResultGroups: "col, SUM(x), ..." header + group rows.
  std::vector<std::string> group_header;
  std::vector<Row> group_rows;
};

/// Decodes a response frame's body. Errors on request-typed frames and
/// on malformed bodies.
Result<WireResponse> DecodeResponse(const Frame& frame);

std::string EncodeHelloOk(uint64_t request_id, uint64_t session_id);
std::string EncodeResultOk(uint64_t request_id, std::string_view message);
std::string EncodeResultCount(uint64_t request_id, uint64_t count);
/// Encodes a SELECT result table (schema + all rows, materialized).
std::string EncodeResultTable(uint64_t request_id, const Table& table);
/// Encodes a GROUP BY result (header labels + group rows).
std::string EncodeResultGroups(uint64_t request_id,
                               const QueryResult& result);
/// Encodes the response for any QueryResult verb.
std::string EncodeQueryResult(uint64_t request_id, const QueryResult& result);
std::string EncodeError(uint64_t request_id, const Status& status);
std::string EncodePong(uint64_t request_id);
std::string EncodePrepareOk(uint64_t request_id, uint64_t stmt_id,
                            uint32_t n_params);

/// Renders a WireResponse the way the embedded shell renders a
/// QueryResult (the thin-client display path).
std::string FormatWireResponse(const WireResponse& response);

}  // namespace server
}  // namespace cods

#endif  // CODS_SERVER_WIRE_H_

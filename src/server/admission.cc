#include "server/admission.h"

#include <algorithm>
#include <utility>

#include "exec/thread_pool.h"
#include "storage/table.h"

namespace cods::server {

const char* LaneToString(Lane lane) {
  return lane == Lane::kPoint ? "point" : "heavy";
}

uint64_t EstimateExprRows(const Table& table, const ExprPtr& where) {
  const uint64_t rows = table.rows();
  if (where == nullptr) return rows;
  switch (where->kind) {
    case ExprKind::kCompare:
    case ExprKind::kIn:
    case ExprKind::kBetween: {
      Result<std::shared_ptr<const Column>> col =
          table.ColumnByRef(where->column);
      if (!col.ok()) return rows;  // unknown ref: no estimate
      const Column& column = *col.ValueOrDie();
      const Dictionary& dict = column.dict();
      uint64_t est = 0;
      for (size_t vid = 0; vid < dict.size(); ++vid) {
        if (where->LeafMatches(dict.value(static_cast<Vid>(vid)))) {
          est += column.ValueCount(static_cast<Vid>(vid));
        }
      }
      return est;
    }
    case ExprKind::kNot: {
      uint64_t child = EstimateExprRows(table, where->children[0]);
      return child >= rows ? 0 : rows - child;
    }
    case ExprKind::kAnd: {
      uint64_t est = rows;
      for (const ExprPtr& child : where->children) {
        est = std::min(est, EstimateExprRows(table, child));
      }
      return est;
    }
    case ExprKind::kOr: {
      uint64_t est = 0;
      for (const ExprPtr& child : where->children) {
        est += EstimateExprRows(table, child);
        if (est >= rows) return rows;
      }
      return est;
    }
  }
  return rows;
}

Lane ClassifyStatement(const Statement& stmt, const CatalogRoot& root,
                       uint64_t heavy_row_threshold,
                       uint64_t* estimated_rows) {
  if (estimated_rows != nullptr) *estimated_rows = 0;
  if (stmt.kind == Statement::Kind::kSmo) return Lane::kHeavy;
  const QueryRequest& q = stmt.query;
  if (!q.join_table.empty() || !q.group_by.empty() ||
      q.verb == QueryRequest::Verb::kGroupBy || !q.order_by.empty()) {
    return Lane::kHeavy;
  }
  if (q.where == nullptr) {
    // COUNT(*) with no predicate is O(1); a bare SELECT ships the whole
    // table over the wire.
    return q.verb == QueryRequest::Verb::kCount ? Lane::kPoint : Lane::kHeavy;
  }
  std::shared_ptr<const Table> table = root.Lookup(q.table);
  if (table == nullptr) return Lane::kPoint;  // fails fast at execution
  uint64_t est = EstimateExprRows(*table, NormalizeExpr(q.where));
  if (estimated_rows != nullptr) *estimated_rows = est;
  return est <= heavy_row_threshold ? Lane::kPoint : Lane::kHeavy;
}

AdmissionController::AdmissionController(BatchRunner runner,
                                         AdmissionOptions options)
    : runner_(std::move(runner)), options_(options) {}

AdmissionController::~AdmissionController() { Drain(); }

int AdmissionController::MaxWorkers(Lane lane) const {
  int n = lane == Lane::kPoint ? options_.point_workers
                               : options_.heavy_workers;
  return std::max(1, n);
}

Status AdmissionController::Submit(Lane lane, AdmissionTask task) {
  std::lock_guard<std::mutex> lock(mu_);
  LaneState& state = lanes_[static_cast<int>(lane)];
  if (draining_) {
    return Status::Unavailable("server is draining");
  }
  if (state.queue.size() >= options_.queue_limit) {
    ++state.stats.rejected_full;
    return Status::Unavailable(std::string(LaneToString(lane)) +
                               " lane queue full (" +
                               std::to_string(options_.queue_limit) +
                               " pending)");
  }
  state.queue.push_back(std::move(task));
  ++state.stats.submitted;
  MaybeSpawnWorkerLocked(lane);
  return Status::OK();
}

void AdmissionController::MaybeSpawnWorkerLocked(Lane lane) {
  LaneState& state = lanes_[static_cast<int>(lane)];
  if (state.queue.empty() || state.active_workers >= MaxWorkers(lane)) {
    return;
  }
  ++state.active_workers;
  // Enough pool threads for every worker slot to run concurrently, so a
  // saturated heavy lane cannot sit on the point lane's slot.
  ThreadPool* pool =
      SharedPool(std::max(1, options_.point_workers + options_.heavy_workers));
  pool->Submit([this, lane] { WorkerLoop(lane); });
}

void AdmissionController::WorkerLoop(Lane lane) {
  LaneState& state = lanes_[static_cast<int>(lane)];
  for (;;) {
    std::vector<AdmissionTask> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      size_t n = std::min(state.queue.size(), options_.max_batch);
      if (n == 0) {
        --state.active_workers;
        if (IdleLocked()) drain_cv_.notify_all();
        return;
      }
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(state.queue.front()));
        state.queue.pop_front();
      }
      ++state.stats.batches;
      state.stats.executed += n;
    }
    runner_(lane, std::move(batch));
  }
}

bool AdmissionController::IdleLocked() const {
  for (const LaneState& state : lanes_) {
    if (!state.queue.empty() || state.active_workers > 0) return false;
  }
  return true;
}

void AdmissionController::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  drain_cv_.wait(lock, [this] { return IdleLocked(); });
}

AdmissionStats AdmissionController::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats stats;
  stats.point = lanes_[static_cast<int>(Lane::kPoint)].stats;
  stats.heavy = lanes_[static_cast<int>(Lane::kHeavy)].stats;
  return stats;
}

}  // namespace cods::server

// The batching executor: compatible queued queries against the same
// pinned root share one compressed predicate eval.
//
// Within one admission batch, statements group by (table, normalized
// WHERE). A group with more than one statement evaluates its predicate
// bitmap ONCE (query/expr.h EvalExpr on the compressed WAH kernels) and
// answers every member off it: COUNT members read the bitmap's O(1)
// popcount, SELECT members build their projections through one shared
// WahPositionFilter (the same position-filter machinery SELECT always
// uses — the eval is shared, the projection build is per distinct
// statement), and exact-duplicate statements share one result object
// outright. Statements the sharing rules do not cover (joins, GROUP
// BY, ORDER BY/LIMIT, no-WHERE) execute individually through
// QueryEngine.
//
// Every statement answered without running its own predicate eval
// counts as a `batch_hit` — the observable proof of sharing that
// bench_server and tests/test_server.cc assert on.

#ifndef CODS_SERVER_BATCH_H_
#define CODS_SERVER_BATCH_H_

#include <cstdint>
#include <vector>

#include "query/query_engine.h"

namespace cods::server {

struct BatchStats {
  uint64_t statements = 0;    // queries pushed through the executor
  uint64_t shared_groups = 0; // groups answered off one shared eval
  uint64_t batch_hits = 0;    // statements that reused a shared eval
};

/// Outcome of one statement of a batch.
struct BatchOutcome {
  Status status;       // non-OK: the error answer for this statement
  QueryResult result;  // valid iff status.ok()
  bool shared = false; // answered off a shared eval / shared result
};

/// Executes `requests` against `store` (one pinned root), sharing
/// evals among compatible statements. Returns one outcome per request,
/// in request order; `stats` (optional) accumulates counters.
std::vector<BatchOutcome> ExecuteQueryBatch(
    const TableStore& store, const std::vector<const QueryRequest*>& requests,
    const ExecContext* ctx, BatchStats* stats = nullptr);

}  // namespace cods::server

#endif  // CODS_SERVER_BATCH_H_

#include "server/batch.h"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "bitmap/wah_filter.h"
#include "exec/parallel_build.h"
#include "query/expr.h"
#include "storage/table.h"

namespace cods::server {

namespace {

/// True when the sharing rules cover this request: single table,
/// plain SELECT/COUNT with a WHERE, no reordering or truncation.
bool Shareable(const QueryRequest& q) {
  if (!q.join_table.empty() || !q.group_by.empty() || !q.order_by.empty()) {
    return false;
  }
  if (q.verb == QueryRequest::Verb::kGroupBy) return false;
  if (q.limit >= 0) return false;
  return q.where != nullptr;
}

/// Key preserved iff every key column survives the projection (the
/// SelectRows contract).
std::vector<std::string> RetainedKey(const std::vector<ColumnSpec>& specs,
                                     std::vector<std::string> key) {
  for (const std::string& k : key) {
    bool kept = std::any_of(specs.begin(), specs.end(),
                            [&](const ColumnSpec& s) { return s.name == k; });
    if (!kept) return {};
  }
  return key;
}

/// SELECT off a precomputed selection: the projection/validation logic
/// of QueryEngine::SelectRows, with the predicate eval replaced by the
/// group's shared position filter.
Result<std::shared_ptr<const Table>> SelectFromFilter(
    const Table& table, const QueryRequest& q, const WahPositionFilter& filter,
    const ExecContext& ctx) {
  std::vector<size_t> indices;
  if (q.columns.empty()) {
    indices.resize(table.num_columns());
    std::iota(indices.begin(), indices.end(), size_t{0});
  } else {
    indices.reserve(q.columns.size());
    for (size_t c = 0; c < q.columns.size(); ++c) {
      CODS_ASSIGN_OR_RETURN(size_t idx, table.ResolveColumnRef(q.columns[c]));
      for (size_t prev = 0; prev < indices.size(); ++prev) {
        if (indices[prev] == idx) {
          return Status::InvalidArgument(
              "duplicate column '" + table.schema().column(idx).name +
              "' in the SELECT list (positions " + std::to_string(prev + 1) +
              " and " + std::to_string(c + 1) + ")");
        }
      }
      indices.push_back(idx);
    }
  }
  std::vector<ColumnSpec> specs;
  specs.reserve(indices.size());
  for (size_t idx : indices) specs.push_back(table.schema().column(idx));
  std::vector<std::string> key = RetainedKey(specs, table.schema().key());
  CODS_ASSIGN_OR_RETURN(Schema schema,
                        Schema::Make(std::move(specs), std::move(key)));
  std::vector<std::shared_ptr<const Column>> cols(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    CODS_ASSIGN_OR_RETURN(cols[i],
                          FilterColumnBitmaps(ctx, *table.column(indices[i]),
                                              filter, "SELECT"));
  }
  return Table::Make(q.out_name, std::move(schema), std::move(cols),
                     filter.num_positions());
}

BatchOutcome FromResult(Result<QueryResult> r) {
  BatchOutcome out;
  if (r.ok()) {
    out.result = std::move(r).ValueOrDie();
  } else {
    out.status = r.status();
  }
  return out;
}

}  // namespace

std::vector<BatchOutcome> ExecuteQueryBatch(
    const TableStore& store, const std::vector<const QueryRequest*>& requests,
    const ExecContext* ctx, BatchStats* stats) {
  std::vector<BatchOutcome> outcomes(requests.size());
  if (stats != nullptr) stats->statements += requests.size();
  QueryEngine engine(&store);
  ExecContext exec = ResolveContext(ctx);

  // Group shareable statements by (table, normalized WHERE); everything
  // else executes individually.
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryRequest& q = *requests[i];
    if (Shareable(q)) {
      groups[q.table + '\x01' + NormalizeExpr(q.where)->ToString()]
          .push_back(i);
    } else {
      outcomes[i] = FromResult(engine.Execute(q, &exec));
    }
  }

  for (auto& [group_key, members] : groups) {
    (void)group_key;
    if (members.size() == 1) {
      size_t i = members[0];
      outcomes[i] = FromResult(engine.Execute(*requests[i], &exec));
      continue;
    }

    // Shared path: one predicate eval answers every member.
    const QueryRequest& first = *requests[members[0]];
    Result<std::shared_ptr<const Table>> table_r = store.GetTable(first.table);
    if (!table_r.ok()) {
      for (size_t i : members) {
        outcomes[i] = FromResult(engine.Execute(*requests[i], &exec));
      }
      continue;
    }
    const Table& table = *table_r.ValueOrDie();
    Result<WahBitmap> bitmap_r = EvalExpr(table, first.where, &exec);
    if (!bitmap_r.ok()) {
      for (size_t i : members) {
        BatchOutcome out;
        out.status = bitmap_r.status();
        outcomes[i] = std::move(out);
      }
      continue;
    }
    const WahBitmap& selection = bitmap_r.ValueOrDie();
    if (stats != nullptr) {
      ++stats->shared_groups;
      stats->batch_hits += members.size() - 1;
    }

    // The position filter is built once, lazily (COUNT-only groups
    // never need it); distinct SELECT shapes each build their own
    // projection through it, exact duplicates share one result.
    std::unique_ptr<WahPositionFilter> filter;
    std::map<std::string, size_t> by_text;  // stmt text -> first outcome
    bool first_member = true;
    for (size_t i : members) {
      const QueryRequest& q = *requests[i];
      BatchOutcome out;
      out.shared = !first_member;
      first_member = false;
      if (q.verb == QueryRequest::Verb::kCount) {
        out.result.verb = QueryRequest::Verb::kCount;
        out.result.count = selection.CountOnes();
        outcomes[i] = std::move(out);
        continue;
      }
      std::string text = q.ToString();
      auto it = by_text.find(text);
      if (it != by_text.end()) {
        out.status = outcomes[it->second].status;
        out.result = outcomes[it->second].result;
        out.shared = true;
        outcomes[i] = std::move(out);
        continue;
      }
      if (filter == nullptr) {
        filter = std::make_unique<WahPositionFilter>(selection.SetPositions(),
                                                     table.rows());
      }
      Result<std::shared_ptr<const Table>> built =
          SelectFromFilter(table, q, *filter, exec);
      if (built.ok()) {
        out.result.verb = QueryRequest::Verb::kSelect;
        out.result.table = std::move(built).ValueOrDie();
      } else {
        out.status = built.status();
      }
      by_text.emplace(std::move(text), i);
      outcomes[i] = std::move(out);
    }
  }
  return outcomes;
}

}  // namespace cods::server

#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

namespace cods::server {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

// ---- Connection / session state -----------------------------------------

struct Server::Conn {
  int fd = -1;
  uint64_t session_id = 0;

  // Loop-thread-only read state.
  std::string rbuf;

  // Write state, shared with workers.
  std::mutex mu;
  std::string wbuf;
  bool close_after_flush = false;
  bool closed = false;
  size_t in_flight = 0;  // admitted statements awaiting a response

  // Session: pinned snapshot + prepared-statement cache.
  std::mutex session_mu;
  Snapshot snapshot;
  uint64_t next_stmt_id = 1;
  std::map<uint64_t, PreparedStatement> prepared;
};

struct Server::PendingStatement {
  std::shared_ptr<Conn> conn;
  uint64_t request_id = 0;
  Statement stmt;
};

// ---- Construction -------------------------------------------------------

Server::Server(DurableDb* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      admission_(
          [this](Lane lane, std::vector<AdmissionTask> tasks) {
            RunBatch(lane, std::move(tasks));
          },
          AdmissionOptions{options_.point_workers, options_.heavy_workers,
                           options_.lane_queue_limit, options_.max_batch}) {}

Server::Server(VersionedCatalog* catalog, ServerOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      admission_(
          [this](Lane lane, std::vector<AdmissionTask> tasks) {
            RunBatch(lane, std::move(tasks));
          },
          AdmissionOptions{options_.point_workers, options_.heavy_workers,
                           options_.lane_queue_limit, options_.max_batch}) {
  engine_ = std::make_unique<EvolutionEngine>(catalog_->serving());
}

Server::~Server() {
  Shutdown();
}

Snapshot Server::GetSnapshot() const {
  return db_ != nullptr ? db_->GetSnapshot() : catalog_->GetSnapshot();
}

Status Server::ExecuteWrite(const Smo& smo) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (db_ != nullptr) return db_->ApplyScript({smo});
  return engine_->Apply(smo);
}

// ---- Lifecycle ----------------------------------------------------------

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr;
  memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    return Errno("bind " + options_.host + ":" +
                 std::to_string(options_.port));
  }
  if (listen(listen_fd_, 128) < 0) return Errno("listen");
  socklen_t len = sizeof addr;
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  CODS_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  if (pipe(wake_fds_) < 0) return Errno("pipe");
  CODS_RETURN_NOT_OK(SetNonBlocking(wake_fds_[0]));
  CODS_RETURN_NOT_OK(SetNonBlocking(wake_fds_[1]));
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void Server::WakeLoop() {
  if (wake_fds_[1] >= 0) {
    char b = 1;
    ssize_t ignored = write(wake_fds_[1], &b, 1);
    (void)ignored;  // EAGAIN means a wakeup is already pending
  }
}

void Server::Shutdown() {
  if (!started_.load() || shut_down_.exchange(true)) return;
  // Phase 1: stop accepting and reading; admitted statements keep
  // executing and their responses keep flowing out.
  draining_.store(true);
  WakeLoop();
  // Phase 2: run every queued statement to completion.
  admission_.Drain();
  // Phase 3: wait (bounded) for the loop to flush every response.
  // cods-lint: allow(wall-clock): shutdown flush deadline; bounds how
  // long Stop() waits, never what any statement computes.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    bool all_flushed = true;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& [fd, conn] : conns_) {
        (void)fd;
        std::lock_guard<std::mutex> cl(conn->mu);
        if (!conn->closed && !conn->wbuf.empty()) {
          all_flushed = false;
          break;
        }
      }
    }
    // cods-lint: allow(wall-clock): same shutdown deadline as above.
    if (all_flushed || std::chrono::steady_clock::now() > deadline) break;
    WakeLoop();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Phase 4: stop the loop and close everything.
  stop_.store(true);
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [fd, conn] : conns_) {
      std::lock_guard<std::mutex> cl(conn->mu);
      if (!conn->closed) {
        close(fd);
        conn->closed = true;
      }
    }
    conns_.clear();
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
  listen_fd_ = wake_fds_[0] = wake_fds_[1] = -1;
}

ServerStats Server::GetStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServerStats out = stats_;
  out.admission = admission_.GetStats();
  return out;
}

// ---- Event loop ---------------------------------------------------------

void Server::EventLoop() {
  while (!stop_.load()) {
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Conn>> polled;
    bool draining = draining_.load();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    if (!draining) fds.push_back({listen_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& [fd, conn] : conns_) {
        short events = 0;
        {
          std::lock_guard<std::mutex> cl(conn->mu);
          if (conn->closed) continue;
          if (!conn->wbuf.empty()) events |= POLLOUT;
          // Backpressure: at the in-flight cap the socket goes unread,
          // so the client's sends eventually block in TCP.
          if (!draining && !conn->close_after_flush &&
              conn->in_flight < options_.session_queue_limit) {
            events |= POLLIN;
          }
        }
        fds.push_back({fd, events, 0});
        polled.push_back(conn);
      }
    }
    int rc = poll(fds.data(), fds.size(), 100);
    if (rc < 0 && errno != EINTR) break;
    if (stop_.load()) break;
    size_t idx = 0;
    if (fds[idx].revents & POLLIN) {
      char buf[256];
      while (read(wake_fds_[0], buf, sizeof buf) > 0) {
      }
    }
    ++idx;
    if (!draining) {
      if (fds[idx].revents & POLLIN) AcceptOne();
      ++idx;
    }
    for (size_t c = 0; c < polled.size(); ++c, ++idx) {
      const std::shared_ptr<Conn>& conn = polled[c];
      short re = fds[idx].revents;
      if (re & (POLLERR | POLLHUP | POLLNVAL)) {
        CloseConn(conn);
        continue;
      }
      if (re & POLLOUT) FlushConn(conn);
      if (re & POLLIN) ReadConn(conn);
    }
  }
}

void Server::AcceptOne() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->session_id = next_session_id_++;
      conns_[fd] = conn;
    }
    conn->snapshot = GetSnapshot();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.sessions_opened;
  }
}

void Server::CloseConn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> cl(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    close(conn->fd);
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(conn->fd);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.sessions_closed;
}

void Server::ReadConn(const std::shared_ptr<Conn>& conn) {
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn->rbuf.append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof buf) break;
      continue;
    }
    if (n == 0) {
      CloseConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  // Decode every complete frame in the buffer.
  for (;;) {
    Frame frame;
    size_t consumed = 0;
    Status error;
    DecodeStatus ds = DecodeFrame(conn->rbuf, options_.max_frame_bytes, &frame,
                                  &consumed, &error);
    if (ds == DecodeStatus::kNeedMore) break;
    if (ds == DecodeStatus::kError) {
      // Hostile or corrupt input: answer with a typed error, then close
      // the connection — the stream is unsynchronized beyond this point.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      std::lock_guard<std::mutex> cl(conn->mu);
      if (!conn->closed) {
        conn->wbuf += EncodeError(0, error);
        conn->close_after_flush = true;
      }
      conn->rbuf.clear();
      return;
    }
    conn->rbuf.erase(0, consumed);
    HandleFrame(conn, frame);
    std::lock_guard<std::mutex> cl(conn->mu);
    if (conn->close_after_flush || conn->closed) break;
  }
}

void Server::FlushConn(const std::shared_ptr<Conn>& conn) {
  bool close_now = false;
  {
    std::lock_guard<std::mutex> cl(conn->mu);
    if (conn->closed) return;
    while (!conn->wbuf.empty()) {
      ssize_t n = send(conn->fd, conn->wbuf.data(), conn->wbuf.size(),
                       MSG_NOSIGNAL);
      if (n > 0) {
        conn->wbuf.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_now = true;  // peer is gone
      break;
    }
    if (conn->wbuf.empty() && conn->close_after_flush) close_now = true;
  }
  if (close_now) CloseConn(conn);
}

void Server::EnqueueOutput(const std::shared_ptr<Conn>& conn,
                           std::string bytes) {
  {
    std::lock_guard<std::mutex> cl(conn->mu);
    if (conn->closed) return;
    conn->wbuf += bytes;
  }
  FlushConn(conn);  // loop thread: try an eager write
}

void Server::SendResponse(const std::shared_ptr<Conn>& conn,
                          std::string bytes) {
  {
    std::lock_guard<std::mutex> cl(conn->mu);
    if (conn->in_flight > 0) --conn->in_flight;
    if (conn->closed) return;
    conn->wbuf += bytes;
  }
  WakeLoop();
}

// ---- Frame dispatch (loop thread) ---------------------------------------

void Server::HandleFrame(const std::shared_ptr<Conn>& conn,
                         const Frame& frame) {
  Result<WireRequest> req_r = DecodeRequest(frame);
  if (!req_r.ok()) {
    // Structurally valid frame with a malformed body: typed error, then
    // close (same unsynchronized-stream reasoning as decode errors).
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
    }
    std::lock_guard<std::mutex> cl(conn->mu);
    if (!conn->closed) {
      conn->wbuf += EncodeError(frame.request_id, req_r.status());
      conn->close_after_flush = true;
    }
    return;
  }
  const WireRequest& req = req_r.ValueOrDie();
  switch (req.type) {
    case FrameType::kHello:
      if (req.protocol != kProtocolVersion) {
        EnqueueOutput(conn,
                      EncodeError(req.request_id,
                                  Status::InvalidArgument(
                                      "protocol version mismatch: server " +
                                      std::to_string(kProtocolVersion) +
                                      ", client " +
                                      std::to_string(req.protocol))));
        return;
      }
      EnqueueOutput(conn, EncodeHelloOk(req.request_id, conn->session_id));
      return;
    case FrameType::kPing:
      EnqueueOutput(conn, EncodePong(req.request_id));
      return;
    case FrameType::kGoodbye: {
      std::lock_guard<std::mutex> cl(conn->mu);
      if (!conn->closed) {
        conn->wbuf += EncodeResultOk(req.request_id, "goodbye");
        conn->close_after_flush = true;
      }
      return;
    }
    case FrameType::kExecute: {
      Result<Statement> stmt = ParseStatement(req.text);
      if (!stmt.ok()) {
        EnqueueOutput(conn, EncodeError(req.request_id, stmt.status()));
        return;
      }
      AdmitStatement(conn, req.request_id, std::move(stmt).ValueOrDie());
      return;
    }
    case FrameType::kPrepare: {
      Snapshot snap = GetSnapshot();
      Result<PreparedStatement> prepared =
          PrepareStatement(req.text, snap.root());
      if (!prepared.ok()) {
        EnqueueOutput(conn, EncodeError(req.request_id, prepared.status()));
        return;
      }
      uint64_t stmt_id;
      uint32_t n_params = prepared.ValueOrDie().n_params;
      {
        std::lock_guard<std::mutex> sl(conn->session_mu);
        stmt_id = conn->next_stmt_id++;
        conn->prepared.emplace(stmt_id, std::move(prepared).ValueOrDie());
      }
      EnqueueOutput(conn, EncodePrepareOk(req.request_id, stmt_id, n_params));
      return;
    }
    case FrameType::kExecPrepared: {
      Snapshot snap = GetSnapshot();
      Result<Statement> bound{Statement{}};
      {
        std::lock_guard<std::mutex> sl(conn->session_mu);
        auto it = conn->prepared.find(req.stmt_id);
        if (it == conn->prepared.end()) {
          bound = Status::KeyError("unknown prepared statement id " +
                                   std::to_string(req.stmt_id));
        } else {
          PreparedStatement& entry = it->second;
          if (entry.resolved_root_id != snap.root().id()) {
            // The catalog evolved under the cache: re-resolve against
            // the new root before answering — never from the stale
            // resolution.
            Status revalidated = ValidateResolution(entry.stmt, snap.root());
            if (!revalidated.ok()) {
              bound = revalidated.WithContext(
                  "prepared statement invalidated by schema evolution");
            } else {
              entry.resolved_root_id = snap.root().id();
            }
          }
          if (bound.ok()) bound = BindParams(entry, req.params);
        }
      }
      if (!bound.ok()) {
        EnqueueOutput(conn, EncodeError(req.request_id, bound.status()));
        return;
      }
      AdmitStatement(conn, req.request_id, std::move(bound).ValueOrDie());
      return;
    }
    case FrameType::kClosePrepared: {
      size_t erased;
      {
        std::lock_guard<std::mutex> sl(conn->session_mu);
        erased = conn->prepared.erase(req.stmt_id);
      }
      if (erased == 0) {
        EnqueueOutput(conn,
                      EncodeError(req.request_id,
                                  Status::KeyError(
                                      "unknown prepared statement id " +
                                      std::to_string(req.stmt_id))));
      } else {
        EnqueueOutput(conn, EncodeResultOk(req.request_id, "closed"));
      }
      return;
    }
    default:
      EnqueueOutput(conn,
                    EncodeError(req.request_id,
                                Status::InvalidArgument(
                                    std::string("unexpected frame type ") +
                                    FrameTypeToString(req.type))));
      return;
  }
}

void Server::AdmitStatement(const std::shared_ptr<Conn>& conn,
                            uint64_t request_id, Statement stmt) {
  Snapshot snap = GetSnapshot();
  Lane lane = ClassifyStatement(stmt, snap.root(), options_.heavy_row_threshold);
  auto payload = std::make_shared<PendingStatement>();
  payload->conn = conn;
  payload->request_id = request_id;
  payload->stmt = std::move(stmt);
  AdmissionTask task;
  task.payload = payload;
  // cods-lint: allow(wall-clock): admission deadline — timeouts are part
  // of the server contract (kTimedOut), not of query results.
  task.deadline = options_.statement_timeout_ms > 0
                      ? std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(
                                options_.statement_timeout_ms)
                      : std::chrono::steady_clock::time_point::max();
  {
    std::lock_guard<std::mutex> cl(conn->mu);
    ++conn->in_flight;
  }
  Status admitted = admission_.Submit(lane, std::move(task));
  if (!admitted.ok()) {
    {
      std::lock_guard<std::mutex> cl(conn->mu);
      if (conn->in_flight > 0) --conn->in_flight;
    }
    EnqueueOutput(conn, EncodeError(request_id, admitted));
  }
}

// ---- Batch execution (worker threads) -----------------------------------

void Server::RunBatch(Lane lane, std::vector<AdmissionTask> tasks) {
  // cods-lint: allow(wall-clock): deadline check against the admission
  // timestamp above; expiry yields kTimedOut, never a different result.
  auto now = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<PendingStatement>> queries;
  std::vector<std::shared_ptr<PendingStatement>> writes;
  for (AdmissionTask& task : tasks) {
    auto stmt = std::static_pointer_cast<PendingStatement>(task.payload);
    if (task.deadline < now) {
      SendResponse(stmt->conn,
                   EncodeError(stmt->request_id,
                               Status::TimedOut(
                                   "statement missed its deadline in the " +
                                   std::string(LaneToString(lane)) +
                                   " lane queue")));
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.statements_timed_out;
      continue;
    }
    (stmt->stmt.kind == Statement::Kind::kQuery ? queries : writes)
        .push_back(std::move(stmt));
  }

  // Writes: strictly serial, acked only after the durability layer
  // reports the commit fsync'd (DurableDb) or the root swapped
  // (in-memory mode).
  for (const auto& stmt : writes) {
    Status st = ExecuteWrite(stmt->stmt.smo);
    if (st.ok()) {
      SendResponse(stmt->conn, EncodeResultOk(stmt->request_id, "OK"));
    } else {
      SendResponse(stmt->conn, EncodeError(stmt->request_id, st));
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++(st.ok() ? stats_.statements_ok : stats_.statements_error);
  }

  if (queries.empty()) return;
  // Queries: one pinned snapshot for the whole batch; compatible
  // statements share evals (server/batch.h). Each participating
  // session's pin advances to the batch root.
  Snapshot snap = GetSnapshot();
  std::vector<const QueryRequest*> requests;
  requests.reserve(queries.size());
  for (const auto& stmt : queries) {
    requests.push_back(&stmt->stmt.query);
    std::lock_guard<std::mutex> sl(stmt->conn->session_mu);
    stmt->conn->snapshot = snap;
  }
  ExecContext exec(std::max(1, options_.exec_threads));
  BatchStats batch_stats;
  std::vector<BatchOutcome> outcomes =
      ExecuteQueryBatch(*snap.store(), requests, &exec, &batch_stats);
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& stmt = queries[i];
    BatchOutcome& out = outcomes[i];
    if (out.status.ok()) {
      SendResponse(stmt->conn,
                   EncodeQueryResult(stmt->request_id, out.result));
    } else {
      SendResponse(stmt->conn, EncodeError(stmt->request_id, out.status));
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.batch.statements += batch_stats.statements;
  stats_.batch.shared_groups += batch_stats.shared_groups;
  stats_.batch.batch_hits += batch_stats.batch_hits;
  for (const BatchOutcome& out : outcomes) {
    ++(out.status.ok() ? stats_.statements_ok : stats_.statements_error);
  }
}

}  // namespace cods::server

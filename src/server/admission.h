// Admission control for the server: two-lane scheduling with bounded
// queues, backpressure, and graceful drain (the NHtapDB-style OLTP/OLAP
// split, sized down to point-vs-analytic statements).
//
// Statements are classified into the POINT lane (cheap: point lookups
// and low-cardinality predicates) or the HEAVY lane (analytic: SMOs,
// joins, GROUP BY, ORDER BY, full-table SELECTs, high-cardinality
// predicates). Classification is free: the per-value popcount
// histograms the columns already maintain (Column::ValueCount is O(1))
// give an upper-bound cardinality estimate for any WHERE tree with one
// dictionary scan per leaf and no bitmap work.
//
// Each lane has its own bounded queue and its own worker-slot budget,
// so a flood of heavy statements can saturate only the heavy slots —
// point statements keep flowing through their reserved slot(s). A full
// lane queue rejects with kUnavailable (backpressure, the client
// retries); Drain() stops intake and waits until both lanes are empty
// and every in-flight batch has finished.
//
// Workers are not dedicated threads: a lane with queued work chains
// batch-sized tasks onto the shared ThreadPool, holding at most
// `*_workers` slots at once, so an idle server parks no threads.

#ifndef CODS_SERVER_ADMISSION_H_
#define CODS_SERVER_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "concurrency/snapshot_catalog.h"
#include "smo/parser.h"

namespace cods::server {

enum class Lane : int { kPoint = 0, kHeavy = 1 };
inline constexpr int kNumLanes = 2;

const char* LaneToString(Lane lane);

/// Upper-bound row estimate for `where` over `table` from the cached
/// per-value popcounts: leaves sum the ValueCount of qualifying
/// dictionary values, AND takes the child minimum, OR the clamped sum,
/// NOT the complement. Null `where` and unknown columns estimate the
/// full table.
uint64_t EstimateExprRows(const Table& table, const ExprPtr& where);

/// Classifies a statement. SMOs, joins, GROUP BY, ORDER BY, and
/// no-WHERE SELECTs are heavy; a no-WHERE COUNT is a point statement
/// (O(1) on the row count); everything else is point iff its estimate
/// is <= heavy_row_threshold. A statement on an unknown table is point
/// (it fails fast at execution). `estimated_rows` (optional) receives
/// the estimate where one was computed.
Lane ClassifyStatement(const Statement& stmt, const CatalogRoot& root,
                       uint64_t heavy_row_threshold,
                       uint64_t* estimated_rows = nullptr);

struct AdmissionOptions {
  int point_workers = 1;
  int heavy_workers = 2;
  size_t queue_limit = 1024;  // per-lane pending statements
  size_t max_batch = 16;      // statements handed to one batch run
};

/// One queued unit of work. The payload is owner-defined (the server
/// queues its PendingStatement); the controller only orders, batches,
/// bounds, and drains.
struct AdmissionTask {
  std::shared_ptr<void> payload;
  std::chrono::steady_clock::time_point deadline;
};

struct LaneStats {
  uint64_t submitted = 0;
  uint64_t rejected_full = 0;  // kUnavailable: queue at limit
  uint64_t executed = 0;       // tasks handed to the runner
  uint64_t batches = 0;        // runner invocations
};

struct AdmissionStats {
  LaneStats point;
  LaneStats heavy;
};

class AdmissionController {
 public:
  /// Runs one dequeued batch; called on a shared-pool thread with
  /// 1..max_batch tasks from a single lane. Deadline enforcement is the
  /// runner's job (it owns the task responses).
  using BatchRunner = std::function<void(Lane, std::vector<AdmissionTask>)>;

  AdmissionController(BatchRunner runner, AdmissionOptions options);
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Enqueues a task. kUnavailable when the lane queue is full or the
  /// controller is draining.
  Status Submit(Lane lane, AdmissionTask task);

  /// Stops intake (Submit returns kUnavailable) and blocks until both
  /// queues are empty and every in-flight batch has returned.
  /// Idempotent.
  void Drain();

  AdmissionStats GetStats() const;

 private:
  struct LaneState {
    std::deque<AdmissionTask> queue;
    int active_workers = 0;
    LaneStats stats;
  };

  int MaxWorkers(Lane lane) const;
  void MaybeSpawnWorkerLocked(Lane lane);
  void WorkerLoop(Lane lane);
  bool IdleLocked() const;

  const BatchRunner runner_;
  const AdmissionOptions options_;

  mutable std::mutex mu_;
  std::condition_variable drain_cv_;
  bool draining_ = false;
  LaneState lanes_[kNumLanes];
};

}  // namespace cods::server

#endif  // CODS_SERVER_ADMISSION_H_

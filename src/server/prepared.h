// Prepared statements for the server: parse once, execute many times
// with typed parameters, and never answer from a stale resolution after
// the schema evolves underneath the cache.
//
// Parameters use the `$1`, `$2`, ... syntax. Rather than extending the
// statement grammar, PREPARE rewrites each placeholder (outside string
// literals, honoring SQL quote doubling) into a sentinel *string
// literal* the parser already accepts, and EXEC rebinds the sentinels
// in the parsed Expr tree to the caller's typed Values. Parameters are
// therefore legal exactly where literals are legal in a WHERE clause;
// an SMO with placeholders is an error at PREPARE time.
//
// Invalidation: a cache entry records the id of the catalog root it was
// resolved against. When the served root has moved (a committed SMO),
// the entry re-resolves its table and column references against the new
// root before executing — a dropped or renamed column becomes a typed
// KeyError, never a stale answer. Re-resolution succeeding silently
// re-prepares the entry on the new root.

#ifndef CODS_SERVER_PREPARED_H_
#define CODS_SERVER_PREPARED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "concurrency/snapshot_catalog.h"
#include "smo/parser.h"

namespace cods::server {

/// First byte of a parameter sentinel literal; effectively reserved in
/// user strings (a user string literal beginning with 0x01 '$' would
/// collide and is rejected at PREPARE).
inline constexpr char kParamSentinelPrefix = '\x01';

/// One cached prepared statement.
struct PreparedStatement {
  std::string text;           // original text, with $n placeholders
  Statement stmt;             // parsed, placeholders as sentinel literals
  uint32_t n_params = 0;      // highest $n referenced
  uint64_t resolved_root_id = 0;  // root the references last resolved on
};

/// Rewrites `$n` placeholders into sentinel string literals. Returns
/// the rewritten text and sets `*n_params` to the highest index (0 for
/// none). `$0`, gaps are allowed to stay unreferenced; indexes above
/// 999 are rejected.
Result<std::string> RewritePlaceholders(const std::string& text,
                                        uint32_t* n_params);

/// True if `v` is a parameter sentinel; sets `*index` (1-based).
bool IsParamSentinel(const Value& v, uint32_t* index);

/// Parses `text` into a prepared statement (placeholders rewritten,
/// statement parsed, references resolved against `root`). SMO
/// statements prepare only with zero parameters.
Result<PreparedStatement> PrepareStatement(const std::string& text,
                                           const CatalogRoot& root);

/// Clones `prepared.stmt` with every sentinel literal replaced by the
/// matching value of `params` (size must equal n_params).
Result<Statement> BindParams(const PreparedStatement& prepared,
                             const std::vector<Value>& params);

/// Checks that every table and column reference of `stmt` resolves in
/// `root` (the invalidation probe). KeyError names the missing
/// reference.
Status ValidateResolution(const Statement& stmt, const CatalogRoot& root);

}  // namespace cods::server

#endif  // CODS_SERVER_PREPARED_H_

#include "server/wire.h"

#include <cstring>

#include "common/crc32c.h"
#include "query/query_engine.h"
#include "storage/table.h"

namespace cods::server {

const char* FrameTypeToString(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kExecute: return "EXECUTE";
    case FrameType::kPrepare: return "PREPARE";
    case FrameType::kExecPrepared: return "EXEC_PREPARED";
    case FrameType::kClosePrepared: return "CLOSE_PREPARED";
    case FrameType::kPing: return "PING";
    case FrameType::kGoodbye: return "GOODBYE";
    case FrameType::kHelloOk: return "HELLO_OK";
    case FrameType::kResultOk: return "RESULT_OK";
    case FrameType::kResultTable: return "RESULT_TABLE";
    case FrameType::kResultCount: return "RESULT_COUNT";
    case FrameType::kResultGroups: return "RESULT_GROUPS";
    case FrameType::kError: return "ERROR";
    case FrameType::kPong: return "PONG";
    case FrameType::kPrepareOk: return "PREPARE_OK";
  }
  return "UNKNOWN";
}

namespace {

bool IsKnownFrameType(uint8_t raw) {
  switch (static_cast<FrameType>(raw)) {
    case FrameType::kHello:
    case FrameType::kExecute:
    case FrameType::kPrepare:
    case FrameType::kExecPrepared:
    case FrameType::kClosePrepared:
    case FrameType::kPing:
    case FrameType::kGoodbye:
    case FrameType::kHelloOk:
    case FrameType::kResultOk:
    case FrameType::kResultTable:
    case FrameType::kResultCount:
    case FrameType::kResultGroups:
    case FrameType::kError:
    case FrameType::kPong:
    case FrameType::kPrepareOk:
      return true;
  }
  return false;
}

}  // namespace

// ---- StatusCode <-> wire error code -------------------------------------

uint32_t WireErrorCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 101;
    case StatusCode::kKeyError: return 102;
    case StatusCode::kAlreadyExists: return 103;
    case StatusCode::kOutOfRange: return 104;
    case StatusCode::kNotImplemented: return 105;
    case StatusCode::kIOError: return 106;
    case StatusCode::kCorruption: return 107;
    case StatusCode::kTypeError: return 108;
    case StatusCode::kConstraintViolation: return 109;
    case StatusCode::kCancelled: return 110;
    case StatusCode::kAborted: return 111;
    case StatusCode::kUnavailable: return 112;
    case StatusCode::kTimedOut: return 113;
  }
  // Unreachable for in-enum codes; an out-of-enum int maps to the
  // corruption wire code so it can never be mistaken for success.
  return 107;
}

StatusCode StatusCodeFromWire(uint32_t wire, bool* known) {
  if (known != nullptr) *known = true;
  switch (wire) {
    case 0: return StatusCode::kOk;
    case 101: return StatusCode::kInvalidArgument;
    case 102: return StatusCode::kKeyError;
    case 103: return StatusCode::kAlreadyExists;
    case 104: return StatusCode::kOutOfRange;
    case 105: return StatusCode::kNotImplemented;
    case 106: return StatusCode::kIOError;
    case 107: return StatusCode::kCorruption;
    case 108: return StatusCode::kTypeError;
    case 109: return StatusCode::kConstraintViolation;
    case 110: return StatusCode::kCancelled;
    case 111: return StatusCode::kAborted;
    case 112: return StatusCode::kUnavailable;
    case 113: return StatusCode::kTimedOut;
    default:
      if (known != nullptr) *known = false;
      return StatusCode::kCorruption;
  }
}

// ---- Primitive codec ----------------------------------------------------

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

void PutValue(std::string* dst, const Value& v) {
  if (v.is_null()) {
    dst->push_back(0);
  } else if (v.is_int64()) {
    dst->push_back(1);
    PutFixed64(dst, static_cast<uint64_t>(v.int64()));
  } else if (v.is_double()) {
    dst->push_back(2);
    uint64_t bits;
    double d = v.dbl();
    std::memcpy(&bits, &d, sizeof bits);
    PutFixed64(dst, bits);
  } else {
    dst->push_back(3);
    PutLengthPrefixed(dst, v.str());
  }
}

bool GetFixed32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(in->data());
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  in->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* in, uint64_t* v) {
  uint32_t lo, hi;
  if (!GetFixed32(in, &lo) || !GetFixed32(in, &hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool GetLengthPrefixed(std::string_view* in, std::string_view* s) {
  uint32_t n;
  if (!GetFixed32(in, &n)) return false;
  if (in->size() < n) return false;
  *s = in->substr(0, n);
  in->remove_prefix(n);
  return true;
}

bool GetValue(std::string_view* in, Value* v) {
  if (in->empty()) return false;
  uint8_t tag = static_cast<uint8_t>(in->front());
  in->remove_prefix(1);
  switch (tag) {
    case 0:
      *v = Value::Null();
      return true;
    case 1: {
      uint64_t bits;
      if (!GetFixed64(in, &bits)) return false;
      *v = Value(static_cast<int64_t>(bits));
      return true;
    }
    case 2: {
      uint64_t bits;
      if (!GetFixed64(in, &bits)) return false;
      double d;
      std::memcpy(&d, &bits, sizeof d);
      *v = Value(d);
      return true;
    }
    case 3: {
      std::string_view s;
      if (!GetLengthPrefixed(in, &s)) return false;
      *v = Value(std::string(s));
      return true;
    }
    default:
      return false;
  }
}

// ---- Framing ------------------------------------------------------------

void EncodeFrame(std::string* dst, FrameType type, uint64_t request_id,
                 std::string_view body) {
  std::string payload;
  payload.reserve(kMinPayloadBytes + body.size());
  payload.push_back(static_cast<char>(type));
  PutFixed64(&payload, request_id);
  payload.append(body.data(), body.size());
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  PutFixed32(dst, crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  dst->append(payload);
}

DecodeStatus DecodeFrame(std::string_view buf, size_t max_frame_bytes,
                         Frame* frame, size_t* consumed, Status* error) {
  if (buf.size() < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  std::string_view header = buf;
  uint32_t len = 0, masked_crc = 0;
  GetFixed32(&header, &len);
  GetFixed32(&header, &masked_crc);
  if (len < kMinPayloadBytes) {
    *error = Status::InvalidArgument("frame payload length " +
                                     std::to_string(len) + " below minimum " +
                                     std::to_string(kMinPayloadBytes));
    return DecodeStatus::kError;
  }
  if (len > max_frame_bytes) {
    *error = Status::InvalidArgument(
        "frame payload length " + std::to_string(len) + " exceeds limit " +
        std::to_string(max_frame_bytes));
    return DecodeStatus::kError;
  }
  if (buf.size() < kFrameHeaderBytes + len) return DecodeStatus::kNeedMore;
  std::string_view payload = buf.substr(kFrameHeaderBytes, len);
  uint32_t actual = crc32c::Value(payload.data(), payload.size());
  if (crc32c::Unmask(masked_crc) != actual) {
    *error = Status::Corruption("frame checksum mismatch");
    return DecodeStatus::kError;
  }
  uint8_t raw_type = static_cast<uint8_t>(payload.front());
  if (!IsKnownFrameType(raw_type)) {
    *error = Status::InvalidArgument("unknown frame type " +
                                     std::to_string(raw_type));
    return DecodeStatus::kError;
  }
  payload.remove_prefix(1);
  uint64_t request_id = 0;
  GetFixed64(&payload, &request_id);  // length checked: >= kMinPayloadBytes
  frame->type = static_cast<FrameType>(raw_type);
  frame->request_id = request_id;
  frame->body.assign(payload.data(), payload.size());
  *consumed = kFrameHeaderBytes + len;
  return DecodeStatus::kFrame;
}

// ---- Requests -----------------------------------------------------------

namespace {

std::string FrameString(FrameType type, uint64_t request_id,
                        std::string_view body) {
  std::string out;
  EncodeFrame(&out, type, request_id, body);
  return out;
}

Status Malformed(const Frame& frame) {
  return Status::InvalidArgument(std::string("malformed ") +
                                 FrameTypeToString(frame.type) +
                                 " frame body");
}

}  // namespace

Result<WireRequest> DecodeRequest(const Frame& frame) {
  WireRequest req;
  req.type = frame.type;
  req.request_id = frame.request_id;
  std::string_view body(frame.body);
  switch (frame.type) {
    case FrameType::kHello:
      if (!GetFixed32(&body, &req.protocol)) return Malformed(frame);
      break;
    case FrameType::kExecute:
    case FrameType::kPrepare: {
      std::string_view text;
      if (!GetLengthPrefixed(&body, &text)) return Malformed(frame);
      req.text.assign(text);
      break;
    }
    case FrameType::kExecPrepared: {
      uint32_t n = 0;
      if (!GetFixed64(&body, &req.stmt_id) || !GetFixed32(&body, &n)) {
        return Malformed(frame);
      }
      req.params.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        Value v;
        if (!GetValue(&body, &v)) return Malformed(frame);
        req.params.push_back(std::move(v));
      }
      break;
    }
    case FrameType::kClosePrepared:
      if (!GetFixed64(&body, &req.stmt_id)) return Malformed(frame);
      break;
    case FrameType::kPing:
    case FrameType::kGoodbye:
      break;
    default:
      return Status::InvalidArgument(
          std::string("response frame type in request position: ") +
          FrameTypeToString(frame.type));
  }
  if (!body.empty()) return Malformed(frame);
  return req;
}

std::string EncodeHello(uint64_t request_id) {
  std::string body;
  PutFixed32(&body, kProtocolVersion);
  return FrameString(FrameType::kHello, request_id, body);
}

std::string EncodeExecute(uint64_t request_id, std::string_view text) {
  std::string body;
  PutLengthPrefixed(&body, text);
  return FrameString(FrameType::kExecute, request_id, body);
}

std::string EncodePrepare(uint64_t request_id, std::string_view text) {
  std::string body;
  PutLengthPrefixed(&body, text);
  return FrameString(FrameType::kPrepare, request_id, body);
}

std::string EncodeExecPrepared(uint64_t request_id, uint64_t stmt_id,
                               const std::vector<Value>& params) {
  std::string body;
  PutFixed64(&body, stmt_id);
  PutFixed32(&body, static_cast<uint32_t>(params.size()));
  for (const Value& v : params) PutValue(&body, v);
  return FrameString(FrameType::kExecPrepared, request_id, body);
}

std::string EncodeClosePrepared(uint64_t request_id, uint64_t stmt_id) {
  std::string body;
  PutFixed64(&body, stmt_id);
  return FrameString(FrameType::kClosePrepared, request_id, body);
}

std::string EncodePing(uint64_t request_id) {
  return FrameString(FrameType::kPing, request_id, {});
}

std::string EncodeGoodbye(uint64_t request_id) {
  return FrameString(FrameType::kGoodbye, request_id, {});
}

// ---- Responses ----------------------------------------------------------

Result<WireResponse> DecodeResponse(const Frame& frame) {
  WireResponse resp;
  resp.type = frame.type;
  resp.request_id = frame.request_id;
  std::string_view body(frame.body);
  switch (frame.type) {
    case FrameType::kHelloOk:
      if (!GetFixed32(&body, &resp.protocol) ||
          !GetFixed64(&body, &resp.session_id)) {
        return Malformed(frame);
      }
      break;
    case FrameType::kResultOk: {
      std::string_view msg;
      if (!GetLengthPrefixed(&body, &msg)) return Malformed(frame);
      resp.message.assign(msg);
      break;
    }
    case FrameType::kResultCount:
      if (!GetFixed64(&body, &resp.count)) return Malformed(frame);
      break;
    case FrameType::kResultTable: {
      uint32_t ncols = 0;
      if (!GetFixed32(&body, &ncols)) return Malformed(frame);
      resp.columns.reserve(ncols);
      resp.types.reserve(ncols);
      for (uint32_t i = 0; i < ncols; ++i) {
        std::string_view name;
        if (!GetLengthPrefixed(&body, &name) || body.empty()) {
          return Malformed(frame);
        }
        uint8_t type_tag = static_cast<uint8_t>(body.front());
        body.remove_prefix(1);
        if (type_tag > 2) return Malformed(frame);
        resp.columns.emplace_back(name);
        resp.types.push_back(static_cast<DataType>(type_tag));
      }
      uint64_t nrows = 0;
      if (!GetFixed64(&body, &nrows)) return Malformed(frame);
      for (uint64_t r = 0; r < nrows; ++r) {
        Row row;
        row.reserve(ncols);
        for (uint32_t c = 0; c < ncols; ++c) {
          Value v;
          if (!GetValue(&body, &v)) return Malformed(frame);
          row.push_back(std::move(v));
        }
        resp.rows.push_back(std::move(row));
      }
      break;
    }
    case FrameType::kResultGroups: {
      uint32_t nlabels = 0;
      if (!GetFixed32(&body, &nlabels)) return Malformed(frame);
      for (uint32_t i = 0; i < nlabels; ++i) {
        std::string_view label;
        if (!GetLengthPrefixed(&body, &label)) return Malformed(frame);
        resp.group_header.emplace_back(label);
      }
      uint64_t ngroups = 0;
      if (!GetFixed64(&body, &ngroups)) return Malformed(frame);
      for (uint64_t g = 0; g < ngroups; ++g) {
        Row row;
        row.reserve(nlabels);
        for (uint32_t c = 0; c < nlabels; ++c) {
          Value v;
          if (!GetValue(&body, &v)) return Malformed(frame);
          row.push_back(std::move(v));
        }
        resp.group_rows.push_back(std::move(row));
      }
      break;
    }
    case FrameType::kError: {
      uint32_t wire = 0;
      std::string_view msg;
      if (!GetFixed32(&body, &wire) || !GetLengthPrefixed(&body, &msg)) {
        return Malformed(frame);
      }
      bool known = true;
      StatusCode code = StatusCodeFromWire(wire, &known);
      std::string text(msg);
      if (!known) {
        text = "unknown wire error code " + std::to_string(wire) + ": " + text;
      }
      resp.error = Status(code, std::move(text));
      break;
    }
    case FrameType::kPong:
      break;
    case FrameType::kPrepareOk:
      if (!GetFixed64(&body, &resp.stmt_id) ||
          !GetFixed32(&body, &resp.n_params)) {
        return Malformed(frame);
      }
      break;
    default:
      return Status::InvalidArgument(
          std::string("request frame type in response position: ") +
          FrameTypeToString(frame.type));
  }
  if (!body.empty()) return Malformed(frame);
  return resp;
}

std::string EncodeHelloOk(uint64_t request_id, uint64_t session_id) {
  std::string body;
  PutFixed32(&body, kProtocolVersion);
  PutFixed64(&body, session_id);
  return FrameString(FrameType::kHelloOk, request_id, body);
}

std::string EncodeResultOk(uint64_t request_id, std::string_view message) {
  std::string body;
  PutLengthPrefixed(&body, message);
  return FrameString(FrameType::kResultOk, request_id, body);
}

std::string EncodeResultCount(uint64_t request_id, uint64_t count) {
  std::string body;
  PutFixed64(&body, count);
  return FrameString(FrameType::kResultCount, request_id, body);
}

std::string EncodeResultTable(uint64_t request_id, const Table& table) {
  std::string body;
  const Schema& schema = table.schema();
  PutFixed32(&body, static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnSpec& spec : schema.columns()) {
    PutLengthPrefixed(&body, spec.name);
    body.push_back(static_cast<char>(spec.type));
  }
  PutFixed64(&body, table.rows());
  for (const Row& row : table.Materialize()) {
    for (const Value& v : row) PutValue(&body, v);
  }
  return FrameString(FrameType::kResultTable, request_id, body);
}

std::string EncodeResultGroups(uint64_t request_id,
                               const QueryResult& result) {
  std::string body;
  PutFixed32(&body, static_cast<uint32_t>(1 + result.aggregates.size()));
  PutLengthPrefixed(&body, "group");
  for (const AggregateSpec& agg : result.aggregates) {
    PutLengthPrefixed(&body, agg.ToString());
  }
  PutFixed64(&body, result.groups.size());
  for (const GroupRow& g : result.groups) {
    PutValue(&body, g.group);
    for (const Value& v : g.aggregates) PutValue(&body, v);
  }
  return FrameString(FrameType::kResultGroups, request_id, body);
}

std::string EncodeQueryResult(uint64_t request_id, const QueryResult& result) {
  switch (result.verb) {
    case QueryRequest::Verb::kSelect:
      return EncodeResultTable(request_id, *result.table);
    case QueryRequest::Verb::kCount:
      return EncodeResultCount(request_id, result.count);
    case QueryRequest::Verb::kGroupBy:
      return EncodeResultGroups(request_id, result);
  }
  return EncodeError(request_id,
                     Status::Corruption("query result with unknown verb"));
}

std::string EncodeError(uint64_t request_id, const Status& status) {
  std::string body;
  PutFixed32(&body, WireErrorCode(status.code()));
  PutLengthPrefixed(&body, status.message());
  return FrameString(FrameType::kError, request_id, body);
}

std::string EncodePong(uint64_t request_id) {
  return FrameString(FrameType::kPong, request_id, {});
}

std::string EncodePrepareOk(uint64_t request_id, uint64_t stmt_id,
                            uint32_t n_params) {
  std::string body;
  PutFixed64(&body, stmt_id);
  PutFixed32(&body, n_params);
  return FrameString(FrameType::kPrepareOk, request_id, body);
}

std::string FormatWireResponse(const WireResponse& resp) {
  std::string out;
  switch (resp.type) {
    case FrameType::kHelloOk:
      out = "connected (session " + std::to_string(resp.session_id) + ")";
      break;
    case FrameType::kResultOk:
      out = resp.message.empty() ? std::string("OK") : resp.message;
      break;
    case FrameType::kResultCount:
      out = "COUNT(*) = " + std::to_string(resp.count);
      break;
    case FrameType::kResultTable: {
      for (size_t i = 0; i < resp.columns.size(); ++i) {
        if (i > 0) out += " | ";
        out += resp.columns[i];
        out += ' ';
        out += DataTypeToString(resp.types[i]);
      }
      out += '\n';
      for (const Row& row : resp.rows) {
        for (size_t i = 0; i < row.size(); ++i) {
          if (i > 0) out += " | ";
          out += row[i].ToString();
        }
        out += '\n';
      }
      out += "(" + std::to_string(resp.rows.size()) + " rows)";
      break;
    }
    case FrameType::kResultGroups: {
      for (size_t i = 0; i < resp.group_header.size(); ++i) {
        if (i > 0) out += " | ";
        out += resp.group_header[i];
      }
      out += '\n';
      for (const Row& row : resp.group_rows) {
        for (size_t i = 0; i < row.size(); ++i) {
          if (i > 0) out += " | ";
          out += row[i].ToString();
        }
        out += '\n';
      }
      out += "(" + std::to_string(resp.group_rows.size()) + " groups)";
      break;
    }
    case FrameType::kError:
      out = "error: " + resp.error.ToString();
      break;
    case FrameType::kPong:
      out = "pong";
      break;
    case FrameType::kPrepareOk:
      out = "prepared statement " + std::to_string(resp.stmt_id) + " (" +
            std::to_string(resp.n_params) + " params)";
      break;
    default:
      out = std::string("unexpected frame ") + FrameTypeToString(resp.type);
      break;
  }
  return out;
}

}  // namespace cods::server

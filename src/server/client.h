// Blocking client for the cods_server frame protocol. One socket, one
// session; calls are synchronous but requests may be PIPELINED
// (ExecuteBatch sends every statement before reading any response) and
// responses are matched to requests by id, so the server's two-lane
// reordering is invisible to callers.
//
// Used by the `cods_shell --connect` thin-client mode, bench_server's
// session storm, and the loopback tests.

#ifndef CODS_SERVER_CLIENT_H_
#define CODS_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/wire.h"

namespace cods::server {

class Client {
 public:
  /// Connects, performs the HELLO handshake, and returns a ready
  /// client. `recv_timeout_ms` bounds every blocking read (0 = none).
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 int recv_timeout_ms = 30000);

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  uint64_t session_id() const { return session_id_; }

  /// Executes one statement and waits for its response. The returned
  /// WireResponse may be a typed kError response (a remote statement
  /// error); a non-OK Result means the transport itself failed.
  Result<WireResponse> Execute(const std::string& text);

  /// Pipelines every statement, then collects all responses (matched by
  /// request id, so lane reordering is fine). Returns one response per
  /// statement, in statement order.
  Result<std::vector<WireResponse>> ExecuteBatch(
      const std::vector<std::string>& texts);

  /// PREPARE: returns the kPrepareOk response (stmt_id, n_params) or
  /// the remote error.
  Result<WireResponse> Prepare(const std::string& text);

  /// EXEC of a prepared statement with positional params ($1 = params[0]).
  Result<WireResponse> ExecutePrepared(uint64_t stmt_id,
                                       const std::vector<Value>& params);

  Result<WireResponse> ClosePrepared(uint64_t stmt_id);

  /// Round-trip liveness probe.
  Status Ping();

  /// Sends GOODBYE (best effort) and closes the socket. Idempotent;
  /// also run by the destructor.
  void Close();

  // ---- Low-level surface (tests) ----------------------------------------

  /// Writes raw bytes to the socket (hostile-input tests).
  Status SendRaw(const std::string& bytes);

  /// Reads the next response frame regardless of request id.
  Result<WireResponse> ReceiveAny();

  /// Reads until the response for `request_id` arrives, buffering
  /// responses for other in-flight requests.
  Result<WireResponse> ReceiveFor(uint64_t request_id);

  uint64_t NextRequestId() { return next_request_id_++; }

 private:
  Client() = default;

  Status SendAll(const std::string& bytes);
  Result<Frame> ReadFrame();

  int fd_ = -1;
  uint64_t session_id_ = 0;
  uint64_t next_request_id_ = 1;
  std::string rbuf_;
  std::map<uint64_t, WireResponse> out_of_order_;
};

}  // namespace cods::server

#endif  // CODS_SERVER_CLIENT_H_

// cods_server's core: a poll()-based event loop multiplexing long-lived
// sessions over TCP, dispatching statements through two-lane admission
// control onto the shared ThreadPool, and answering on the frame
// protocol of server/wire.h.
//
// Threading model:
//   * One event-loop thread owns every fd: accept, read, frame decode,
//     parse, classify, admit, and write-back. Statement execution never
//     runs here.
//   * Admission workers (server/admission.h) run batches on the shared
//     ThreadPool: deadline checks, SMO writes (serialized through the
//     DurableDb / VersionedCatalog single-writer protocol), and query
//     batches through the sharing executor (server/batch.h) against
//     ONE pinned Snapshot per batch. Responses are appended to the
//     connection's write buffer and the loop is woken via self-pipe.
//   * Responses may be answered out of admission order (the point lane
//     overtakes the heavy lane); clients match responses to requests by
//     request id.
//
// Sessions: one per connection. Each session holds its last pinned
// Snapshot (refreshed to the batch snapshot whenever one of its
// statements executes), a bounded in-flight statement budget — at the
// limit the loop stops reading the socket, pushing backpressure into
// TCP — and a prepared-statement cache with root-change invalidation
// (server/prepared.h).
//
// Durability: writes go through DurableDb::ApplyScript, whose OK means
// fsync'd-then-visible; an acked SMO response therefore implies a
// crash-durable commit, and graceful Shutdown() drains every admitted
// statement and flushes every response before closing sockets.

#ifndef CODS_SERVER_SERVER_H_
#define CODS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "durability/db.h"
#include "evolution/engine.h"
#include "concurrency/versioned_catalog.h"
#include "server/admission.h"
#include "server/batch.h"
#include "server/prepared.h"
#include "server/wire.h"

namespace cods::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port with port()

  int point_workers = 1;
  int heavy_workers = 2;
  size_t lane_queue_limit = 1024;   // per-lane admission queue
  size_t max_batch = 16;            // statements per execution batch
  size_t session_queue_limit = 64;  // per-session in-flight statements
  int statement_timeout_ms = 10000; // 0 = no deadline
  uint64_t heavy_row_threshold = 4096;  // point/heavy estimate split
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  int exec_threads = 1;  // ExecContext width for statement execution
};

struct ServerStats {
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t statements_ok = 0;
  uint64_t statements_error = 0;
  uint64_t statements_timed_out = 0;
  uint64_t protocol_errors = 0;  // bad frames -> connection closed
  AdmissionStats admission;
  BatchStats batch;
};

class Server {
 public:
  /// Serves a durable database: SMOs go through ApplyScript (WAL +
  /// fsync before ack), queries pin snapshots.
  Server(DurableDb* db, ServerOptions options);
  /// Serves an in-memory catalog (tests, benches): SMOs go through an
  /// internal snapshot-commit engine.
  Server(VersionedCatalog* catalog, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event loop.
  Status Start();

  /// The bound port (after Start).
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting and reading, execute every admitted
  /// statement, flush every response, then close. Idempotent.
  void Shutdown();

  ServerStats GetStats() const;

 private:
  struct Conn;
  struct PendingStatement;

  Snapshot GetSnapshot() const;
  Status ExecuteWrite(const Smo& smo);

  void EventLoop();
  void WakeLoop();
  void AcceptOne();
  void ReadConn(const std::shared_ptr<Conn>& conn);
  void FlushConn(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void HandleFrame(const std::shared_ptr<Conn>& conn, const Frame& frame);
  void AdmitStatement(const std::shared_ptr<Conn>& conn, uint64_t request_id,
                      Statement stmt);
  /// Loop-thread response (no in-flight accounting).
  void EnqueueOutput(const std::shared_ptr<Conn>& conn, std::string bytes);
  /// Worker-thread response: appends, releases one in-flight slot,
  /// wakes the loop.
  void SendResponse(const std::shared_ptr<Conn>& conn, std::string bytes);
  void RunBatch(Lane lane, std::vector<AdmissionTask> tasks);

  DurableDb* db_ = nullptr;                  // durable mode
  VersionedCatalog* catalog_ = nullptr;      // in-memory mode
  std::unique_ptr<EvolutionEngine> engine_;  // in-memory mode writer
  const ServerOptions options_;

  AdmissionController admission_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] read, [1] write
  uint16_t port_ = 0;
  std::thread loop_thread_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};  // stop accept/read, keep writing
  std::atomic<bool> stop_{false};      // event loop exits
  std::atomic<bool> shut_down_{false};

  // Connection registry: mutated only by the loop thread; the mutex
  // covers the map itself for Shutdown's flush scan.
  mutable std::mutex conns_mu_;
  std::map<int, std::shared_ptr<Conn>> conns_;
  uint64_t next_session_id_ = 1;

  std::mutex write_mu_;  // serializes SMO application

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace cods::server

#endif  // CODS_SERVER_SERVER_H_

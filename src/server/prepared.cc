#include "server/prepared.h"

#include <utility>

namespace cods::server {

namespace {

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

void CollectLeafColumns(const ExprPtr& expr, std::vector<std::string>* out) {
  if (expr == nullptr) return;
  switch (expr->kind) {
    case ExprKind::kCompare:
    case ExprKind::kIn:
    case ExprKind::kBetween:
      out->push_back(expr->column);
      break;
    case ExprKind::kNot:
    case ExprKind::kAnd:
    case ExprKind::kOr:
      for (const ExprPtr& child : expr->children) {
        CollectLeafColumns(child, out);
      }
      break;
  }
}

Result<Value> BindOne(const Value& v, const std::vector<Value>& params) {
  uint32_t index = 0;
  if (!IsParamSentinel(v, &index)) return v;
  if (index == 0 || index > params.size()) {
    return Status::InvalidArgument("parameter $" + std::to_string(index) +
                                   " out of range (got " +
                                   std::to_string(params.size()) + " params)");
  }
  return params[index - 1];
}

Result<ExprPtr> RebindExpr(const ExprPtr& expr,
                           const std::vector<Value>& params) {
  if (expr == nullptr) return ExprPtr(nullptr);
  switch (expr->kind) {
    case ExprKind::kCompare: {
      CODS_ASSIGN_OR_RETURN(Value literal, BindOne(expr->literal, params));
      return Expr::Compare(expr->column, expr->op, std::move(literal));
    }
    case ExprKind::kIn: {
      std::vector<Value> values;
      values.reserve(expr->in_values.size());
      for (const Value& v : expr->in_values) {
        CODS_ASSIGN_OR_RETURN(Value bound, BindOne(v, params));
        values.push_back(std::move(bound));
      }
      return Expr::In(expr->column, std::move(values));
    }
    case ExprKind::kBetween: {
      CODS_ASSIGN_OR_RETURN(Value lo, BindOne(expr->between_lo, params));
      CODS_ASSIGN_OR_RETURN(Value hi, BindOne(expr->between_hi, params));
      return Expr::Between(expr->column, std::move(lo), std::move(hi));
    }
    case ExprKind::kNot: {
      CODS_ASSIGN_OR_RETURN(ExprPtr child,
                            RebindExpr(expr->children[0], params));
      return Expr::Not(std::move(child));
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<ExprPtr> children;
      children.reserve(expr->children.size());
      for (const ExprPtr& child : expr->children) {
        CODS_ASSIGN_OR_RETURN(ExprPtr bound, RebindExpr(child, params));
        children.push_back(std::move(bound));
      }
      return expr->kind == ExprKind::kAnd ? Expr::And(std::move(children))
                                          : Expr::Or(std::move(children));
    }
  }
  return Status::Corruption("expression node with unknown kind");
}

/// Counts sentinel literals left in the tree (diagnostic for statements
/// whose placeholders ended up outside a bindable position).
void CountSentinels(const ExprPtr& expr, uint32_t* n) {
  if (expr == nullptr) return;
  uint32_t idx = 0;
  if (IsParamSentinel(expr->literal, &idx)) ++*n;
  for (const Value& v : expr->in_values) {
    if (IsParamSentinel(v, &idx)) ++*n;
  }
  if (IsParamSentinel(expr->between_lo, &idx)) ++*n;
  if (IsParamSentinel(expr->between_hi, &idx)) ++*n;
  for (const ExprPtr& child : expr->children) CountSentinels(child, n);
}

}  // namespace

Result<std::string> RewritePlaceholders(const std::string& text,
                                        uint32_t* n_params) {
  *n_params = 0;
  std::string out;
  out.reserve(text.size());
  char quote = '\0';  // '\0' = outside any string literal
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == kParamSentinelPrefix) {
      return Status::InvalidArgument(
          "statement text contains the reserved parameter-sentinel byte");
    }
    if (quote != '\0') {
      out.push_back(c);
      if (c == quote) {
        if (i + 1 < text.size() && text[i + 1] == quote) {
          out.push_back(text[++i]);  // doubled quote stays inside
        } else {
          quote = '\0';
        }
      }
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
      out.push_back(c);
      continue;
    }
    if (c == '$') {
      size_t j = i + 1;
      while (j < text.size() && IsDigit(text[j])) ++j;
      if (j == i + 1) {
        return Status::InvalidArgument(
            "'$' must be followed by a parameter index");
      }
      if (j - i - 1 > 3) {
        return Status::InvalidArgument("parameter index too large");
      }
      uint32_t index =
          static_cast<uint32_t>(std::stoul(text.substr(i + 1, j - i - 1)));
      if (index == 0) {
        return Status::InvalidArgument("parameter indexes start at $1");
      }
      if (index > *n_params) *n_params = index;
      out.push_back('\'');
      out.push_back(kParamSentinelPrefix);
      out.push_back('$');
      out.append(text, i + 1, j - i - 1);
      out.push_back('\'');
      i = j - 1;
      continue;
    }
    out.push_back(c);
  }
  if (quote != '\0') {
    return Status::InvalidArgument("unterminated string literal");
  }
  return out;
}

bool IsParamSentinel(const Value& v, uint32_t* index) {
  if (!v.is_string()) return false;
  const std::string& s = v.str();
  if (s.size() < 3 || s[0] != kParamSentinelPrefix || s[1] != '$') {
    return false;
  }
  uint32_t idx = 0;
  for (size_t i = 2; i < s.size(); ++i) {
    if (!IsDigit(s[i])) return false;
    idx = idx * 10 + static_cast<uint32_t>(s[i] - '0');
  }
  *index = idx;
  return true;
}

Result<PreparedStatement> PrepareStatement(const std::string& text,
                                           const CatalogRoot& root) {
  PreparedStatement prepared;
  prepared.text = text;
  CODS_ASSIGN_OR_RETURN(std::string rewritten,
                        RewritePlaceholders(text, &prepared.n_params));
  CODS_ASSIGN_OR_RETURN(prepared.stmt, ParseStatement(rewritten));
  if (prepared.stmt.kind == Statement::Kind::kSmo && prepared.n_params > 0) {
    return Status::InvalidArgument(
        "parameters are only supported in query statements");
  }
  if (prepared.stmt.kind == Statement::Kind::kQuery && prepared.n_params > 0) {
    uint32_t bindable = 0;
    CountSentinels(prepared.stmt.query.where, &bindable);
    if (bindable == 0) {
      return Status::InvalidArgument(
          "parameters must appear in the WHERE clause");
    }
  }
  CODS_RETURN_NOT_OK(ValidateResolution(prepared.stmt, root));
  prepared.resolved_root_id = root.id();
  return prepared;
}

Result<Statement> BindParams(const PreparedStatement& prepared,
                             const std::vector<Value>& params) {
  if (params.size() != prepared.n_params) {
    return Status::InvalidArgument(
        "prepared statement takes " + std::to_string(prepared.n_params) +
        " params, got " + std::to_string(params.size()));
  }
  Statement bound = prepared.stmt;
  if (bound.kind == Statement::Kind::kQuery && bound.query.where != nullptr) {
    CODS_ASSIGN_OR_RETURN(bound.query.where,
                          RebindExpr(bound.query.where, params));
  }
  return bound;
}

Status ValidateResolution(const Statement& stmt, const CatalogRoot& root) {
  if (stmt.kind != Statement::Kind::kQuery) return Status::OK();
  const QueryRequest& q = stmt.query;
  CODS_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                        root.GetTable(q.table));
  if (!q.join_table.empty()) {
    // Joined references bind against the join-result schema, which only
    // exists at execution; the table probes are the invalidation signal.
    CODS_RETURN_NOT_OK(root.GetTable(q.join_table).status());
    return Status::OK();
  }
  std::vector<std::string> refs = q.columns;
  if (!q.group_by.empty()) refs.push_back(q.group_by);
  if (!q.order_by.empty()) refs.push_back(q.order_by);
  for (const AggregateSpec& agg : q.aggregates) {
    if (!agg.column.empty()) refs.push_back(agg.column);
  }
  CollectLeafColumns(q.where, &refs);
  for (const std::string& ref : refs) {
    CODS_RETURN_NOT_OK(table->ResolveColumnRef(ref).status());
  }
  return Status::OK();
}

}  // namespace cods::server

#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <utility>

namespace cods::server {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                int recv_timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr;
  memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status st = Errno("connect " + host + ":" + std::to_string(port));
    close(fd);
    return st;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (recv_timeout_ms > 0) {
    timeval tv;
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  std::unique_ptr<Client> client(new Client());
  client->fd_ = fd;
  uint64_t id = client->NextRequestId();
  CODS_RETURN_NOT_OK(client->SendAll(EncodeHello(id)));
  CODS_ASSIGN_OR_RETURN(WireResponse hello, client->ReceiveFor(id));
  if (hello.type == FrameType::kError) return hello.error;
  if (hello.type != FrameType::kHelloOk) {
    return Status::Corruption(std::string("unexpected handshake frame ") +
                              FrameTypeToString(hello.type));
  }
  client->session_id_ = hello.session_id;
  return client;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ < 0) return;
  // Best-effort goodbye; the server closes after acking it.
  SendAll(EncodeGoodbye(NextRequestId())).IgnoreError();
  close(fd_);
  fd_ = -1;
}

Status Client::SendAll(const std::string& bytes) {
  if (fd_ < 0) return Status::IOError("client is closed");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::SendRaw(const std::string& bytes) { return SendAll(bytes); }

Result<Frame> Client::ReadFrame() {
  for (;;) {
    Frame frame;
    size_t consumed = 0;
    Status error;
    DecodeStatus ds = DecodeFrame(rbuf_, kDefaultMaxFrameBytes, &frame,
                                  &consumed, &error);
    if (ds == DecodeStatus::kFrame) {
      rbuf_.erase(0, consumed);
      return frame;
    }
    if (ds == DecodeStatus::kError) return error;
    char buf[64 * 1024];
    ssize_t n = recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      rbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::TimedOut("no response within the receive timeout");
    }
    return Errno("recv");
  }
}

Result<WireResponse> Client::ReceiveAny() {
  if (!out_of_order_.empty()) {
    auto it = out_of_order_.begin();
    WireResponse resp = std::move(it->second);
    out_of_order_.erase(it);
    return resp;
  }
  CODS_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  return DecodeResponse(frame);
}

Result<WireResponse> Client::ReceiveFor(uint64_t request_id) {
  auto it = out_of_order_.find(request_id);
  if (it != out_of_order_.end()) {
    WireResponse resp = std::move(it->second);
    out_of_order_.erase(it);
    return resp;
  }
  for (;;) {
    CODS_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    CODS_ASSIGN_OR_RETURN(WireResponse resp, DecodeResponse(frame));
    if (resp.request_id == request_id) return resp;
    out_of_order_[resp.request_id] = std::move(resp);
  }
}

Result<WireResponse> Client::Execute(const std::string& text) {
  uint64_t id = NextRequestId();
  CODS_RETURN_NOT_OK(SendAll(EncodeExecute(id, text)));
  return ReceiveFor(id);
}

Result<std::vector<WireResponse>> Client::ExecuteBatch(
    const std::vector<std::string>& texts) {
  std::vector<uint64_t> ids;
  ids.reserve(texts.size());
  std::string out;
  for (const std::string& text : texts) {
    ids.push_back(NextRequestId());
    out += EncodeExecute(ids.back(), text);
  }
  CODS_RETURN_NOT_OK(SendAll(out));
  std::vector<WireResponse> responses;
  responses.reserve(texts.size());
  for (uint64_t id : ids) {
    CODS_ASSIGN_OR_RETURN(WireResponse resp, ReceiveFor(id));
    responses.push_back(std::move(resp));
  }
  return responses;
}

Result<WireResponse> Client::Prepare(const std::string& text) {
  uint64_t id = NextRequestId();
  CODS_RETURN_NOT_OK(SendAll(EncodePrepare(id, text)));
  return ReceiveFor(id);
}

Result<WireResponse> Client::ExecutePrepared(uint64_t stmt_id,
                                             const std::vector<Value>& params) {
  uint64_t id = NextRequestId();
  CODS_RETURN_NOT_OK(SendAll(EncodeExecPrepared(id, stmt_id, params)));
  return ReceiveFor(id);
}

Result<WireResponse> Client::ClosePrepared(uint64_t stmt_id) {
  uint64_t id = NextRequestId();
  CODS_RETURN_NOT_OK(SendAll(EncodeClosePrepared(id, stmt_id)));
  return ReceiveFor(id);
}

Status Client::Ping() {
  uint64_t id = NextRequestId();
  CODS_RETURN_NOT_OK(SendAll(EncodePing(id)));
  CODS_ASSIGN_OR_RETURN(WireResponse resp, ReceiveFor(id));
  if (resp.type == FrameType::kError) return resp.error;
  if (resp.type != FrameType::kPong) {
    return Status::Corruption(std::string("unexpected ping response ") +
                              FrameTypeToString(resp.type));
  }
  return Status::OK();
}

}  // namespace cods::server

#include "common/crc32c.h"

#include <array>

namespace cods::crc32c {

namespace {

// Slice-by-4 lookup tables for the reflected Castagnoli polynomial,
// generated once at startup (cheap: 4 KiB).
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~crc;
  while (n >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = tb.t[3][c & 0xFF] ^ tb.t[2][(c >> 8) & 0xFF] ^
        tb.t[1][(c >> 16) & 0xFF] ^ tb.t[0][c >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    c = (c >> 8) ^ tb.t[0][(c ^ *p) & 0xFF];
    ++p;
    --n;
  }
  return ~c;
}

}  // namespace cods::crc32c

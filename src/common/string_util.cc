#include "common/string_util.h"

#include <cctype>
#include <cstdlib>

namespace cods {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool LooksLikeInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return false;
  size_t i = (s[0] == '+' || s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty() || LooksLikeInt(s)) return false;
  std::string buf(s);
  char* end = nullptr;
  std::strtod(buf.c_str(), &end);
  return end != nullptr && *end == '\0' && end != buf.c_str();
}

}  // namespace cods

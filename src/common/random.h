// Deterministic PRNG utilities shared by tests, the workload generator,
// and benchmarks. A fixed seed gives reproducible workloads.

#ifndef CODS_COMMON_RANDOM_H_
#define CODS_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace cods {

/// Thin wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p of true.
  bool NextBool(double p = 0.5);

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

  /// A random permutation of 0..n-1.
  std::vector<uint64_t> Permutation(uint64_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf-distributed integer sampler over {0, ..., n-1} with exponent s.
/// Uses the classic inverse-CDF-over-precomputed-weights approach; O(log n)
/// per draw after O(n) setup.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;  // cumulative weights, normalized to [0,1]
};

}  // namespace cods

#endif  // CODS_COMMON_RANDOM_H_

#include "common/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>

#include "common/logging.h"

namespace cods {

namespace {

// "cannot open 'x': No such file or directory" — every POSIX failure
// surfaces its errno this way.
Status ErrnoStatus(const std::string& context, int err) {
  return Status::IOError(context + ": " +
                         std::generic_category().message(err));
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// Fsyncs a directory so a rename/unlink inside it is durable.
Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("cannot open directory '" + dir + "'", errno);
  Status st;
  if (::fsync(fd) != 0) {
    // Some file systems refuse fsync on directories (EINVAL); treat
    // only real errors as failures.
    if (errno != EINVAL) {
      st = ErrnoStatus("cannot sync directory '" + dir + "'", errno);
    }
  }
  ::close(fd);
  return st;
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write to '" + path_ + "' failed", errno);
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return ErrnoStatus("fsync of '" + path_ + "' failed", errno);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return ErrnoStatus("close of '" + path_ + "' failed", errno);
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override {
    int flags = O_WRONLY | O_CREAT | (append ? O_APPEND : O_TRUNC);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return ErrnoStatus("cannot open '" + path + "' for write", errno);
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::vector<uint8_t>> ReadFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("cannot open '" + path + "'", errno);
    std::vector<uint8_t> data;
    uint8_t buf[1 << 16];
    for (;;) {
      ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r < 0) {
        if (errno == EINTR) continue;
        Status st = ErrnoStatus("read of '" + path + "' failed", errno);
        ::close(fd);
        return st;
      }
      if (r == 0) break;
      data.insert(data.end(), buf, buf + r);
    }
    ::close(fd);
    return data;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("cannot stat '" + path + "'", errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus(
          "cannot rename '" + from + "' to '" + to + "'", errno);
    }
    return SyncDir(ParentDir(to));
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus("cannot delete '" + path + "'", errno);
    }
    return SyncDir(ParentDir(path));
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("cannot truncate '" + path + "'", errno);
    }
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) == 0) return Status::OK();
    if (errno == EEXIST) {
      struct stat st;
      if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        return Status::OK();
      }
      return Status::IOError("'" + path + "' exists and is not a directory");
    }
    return ErrnoStatus("cannot create directory '" + path + "'", errno);
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
      return ErrnoStatus("cannot open directory '" + path + "'", errno);
    }
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    return names;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Status WriteFile(Env* env, const std::string& path,
                 const std::vector<uint8_t>& data) {
  CODS_ASSIGN_OR_RETURN(auto file, env->NewWritableFile(path, false));
  CODS_RETURN_NOT_OK(file->Append(data.data(), data.size()));
  CODS_RETURN_NOT_OK(file->Sync());
  return file->Close();
}

Status WriteFileAtomic(Env* env, const std::string& path,
                       const std::vector<uint8_t>& data) {
  std::string tmp = path + ".tmp";
  CODS_ASSIGN_OR_RETURN(auto file, env->NewWritableFile(tmp, false));
  CODS_RETURN_NOT_OK(file->Append(data.data(), data.size()));
  CODS_RETURN_NOT_OK(file->Sync());
  CODS_RETURN_NOT_OK(file->Close());
  return env->RenameFile(tmp, path);
}

// ---- FaultInjectionEnv ------------------------------------------------------

/// WritableFile decorator reporting every append/sync/close to the env.
class FaultInjectionWritableFile : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env,
                             std::unique_ptr<WritableFile> base,
                             std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)) {}

  Status Append(const void* data, size_t n) override {
    if (env_->fail_appends_ > 0) {
      --env_->fail_appends_;
      ++env_->ops_;
      return Status::IOError("injected write failure on '" + path_ + "'");
    }
    // Order matters: the bytes land in the base file first, THEN the
    // crash may trip — so a crash "during" this append sees the bytes as
    // part of the un-synced (droppable, tearable) suffix.
    Status st = base_->Append(data, n);
    if (st.ok()) env_->files_[path_].size += n;
    Status fault = env_->MaybeFault();
    if (!fault.ok()) return fault;
    return st;
  }

  Status Sync() override {
    if (env_->crashed_) return env_->MaybeFault();
    if (env_->fail_syncs_ > 0) {
      --env_->fail_syncs_;
      ++env_->ops_;
      return Status::IOError("injected fsync failure on '" + path_ + "'");
    }
    CODS_RETURN_NOT_OK(env_->MaybeFault());
    CODS_RETURN_NOT_OK(base_->Sync());
    FaultInjectionEnv::FileState& fs = env_->files_[path_];
    fs.synced_size = fs.size;
    return Status::OK();
  }

  Status Close() override {
    CODS_RETURN_NOT_OK(env_->MaybeFault());
    return base_->Close();
  }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base, uint64_t seed)
    : base_(base), rng_(seed) {
  CODS_CHECK(base_ != nullptr);
}

Status FaultInjectionEnv::MaybeFault() {
  if (crashed_) return Status::IOError("simulated crash");
  ++ops_;
  if (crash_at_op_ != 0 && ops_ >= crash_at_op_) {
    crashed_ = true;
    ApplyCrash();
    return Status::IOError("simulated crash");
  }
  return Status::OK();
}

void FaultInjectionEnv::ApplyCrash() {
  // std::map iteration order is deterministic, so a given seed + crash
  // point always produces the same post-crash disk.
  for (const auto& [path, fs] : files_) {
    if (fs.size <= fs.synced_size) continue;
    uint64_t unsynced = fs.size - fs.synced_size;
    uint64_t kept;
    switch (rng_.Uniform(0, 2)) {
      case 0:
        kept = 0;  // whole un-synced suffix lost
        break;
      case 1:
        kept = unsynced;  // suffix happened to reach disk
        break;
      default:
        kept = static_cast<uint64_t>(rng_.Uniform(
            0, static_cast<int64_t>(unsynced)));  // torn mid-suffix
        break;
    }
    base_->TruncateFile(path, fs.synced_size + kept).IgnoreError();
    // A torn sector may carry garbage: sometimes flip one bit inside the
    // surviving un-synced part.
    if (kept > 0 && rng_.NextBool(0.25)) {
      auto data = base_->ReadFile(path);
      if (data.ok()) {
        uint64_t pos = fs.synced_size + static_cast<uint64_t>(rng_.Uniform(
                                            0, static_cast<int64_t>(kept) - 1));
        data.ValueOrDie()[pos] ^=
            static_cast<uint8_t>(1u << rng_.Uniform(0, 7));
        WriteFile(base_, path, data.ValueOrDie()).IgnoreError();
      }
    }
  }
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool append) {
  CODS_RETURN_NOT_OK(MaybeFault());
  CODS_ASSIGN_OR_RETURN(auto base, base_->NewWritableFile(path, append));
  FileState fs;
  if (append && base_->FileExists(path)) {
    CODS_ASSIGN_OR_RETURN(uint64_t size, base_->GetFileSize(path));
    // Pre-existing content is treated as already durable.
    fs.synced_size = fs.size = size;
  }
  files_[path] = fs;
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectionWritableFile>(this, std::move(base),
                                                   path));
}

Result<std::vector<uint8_t>> FaultInjectionEnv::ReadFile(
    const std::string& path) {
  if (crashed_) return Status::IOError("simulated crash");
  return base_->ReadFile(path);
}

Result<uint64_t> FaultInjectionEnv::GetFileSize(const std::string& path) {
  if (crashed_) return Status::IOError("simulated crash");
  return base_->GetFileSize(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return !crashed_ && base_->FileExists(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  CODS_RETURN_NOT_OK(MaybeFault());
  CODS_RETURN_NOT_OK(base_->RenameFile(from, to));
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  } else {
    files_.erase(to);
  }
  return Status::OK();
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  CODS_RETURN_NOT_OK(MaybeFault());
  CODS_RETURN_NOT_OK(base_->DeleteFile(path));
  files_.erase(path);
  return Status::OK();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  CODS_RETURN_NOT_OK(MaybeFault());
  CODS_RETURN_NOT_OK(base_->TruncateFile(path, size));
  auto it = files_.find(path);
  if (it != files_.end()) {
    it->second.size = std::min(it->second.size, size);
    it->second.synced_size = std::min(it->second.synced_size, size);
  }
  return Status::OK();
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& path) {
  CODS_RETURN_NOT_OK(MaybeFault());
  return base_->CreateDirIfMissing(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& path) {
  if (crashed_) return Status::IOError("simulated crash");
  return base_->ListDir(path);
}

}  // namespace cods

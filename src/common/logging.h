// Minimal leveled logging plus CHECK macros, in the style of
// glog / RocksDB's logger. Logging goes to stderr; CHECK failures abort.

#ifndef CODS_COMMON_LOGGING_H_
#define CODS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace cods {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Where finished log lines go. The default sink writes to stderr.
/// Sinks receive one whole line (newline included) per call.
using LogSink = void (*)(LogLevel level, const char* line);

/// Swaps the process-wide sink (nullptr restores the stderr default).
/// Thread-safe: the sink pointer is atomic and line emission from
/// concurrent threads is serialized by a mutex, so worker threads of the
/// exec layer can log freely and lines never interleave.
void SetLogSink(LogSink sink);

namespace internal {

/// Collects one log line via operator<< and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process in its destructor (CHECK failures).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace cods

#define CODS_LOG(level)                                                   \
  ::cods::internal::LogMessage(::cods::LogLevel::k##level, __FILE__,      \
                               __LINE__)

/// Aborts with a message when `cond` is false. Active in all build types:
/// these guard internal invariants whose violation would corrupt data.
#define CODS_CHECK(cond)                                              \
  if (cond) {                                                         \
  } else /* NOLINT */                                                 \
    ::cods::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define CODS_CHECK_OK(expr)                                     \
  do {                                                          \
    ::cods::Status _st = (expr);                                \
    CODS_CHECK(_st.ok()) << _st.ToString();                     \
  } while (false)

#ifndef NDEBUG
#define CODS_DCHECK(cond) CODS_CHECK(cond)
#else
#define CODS_DCHECK(cond) \
  if (true) {             \
  } else /* NOLINT */     \
    ::cods::internal::FatalLogMessage(__FILE__, __LINE__, #cond)
#endif

#endif  // CODS_COMMON_LOGGING_H_

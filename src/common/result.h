// Result<T>: value-or-Status, in the style of arrow::Result.

#ifndef CODS_COMMON_RESULT_H_
#define CODS_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace cods {

/// Holds either a value of type T or a non-OK Status describing why the
/// value could not be produced.
///
/// Typical use:
///   Result<Table> r = Load(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).ValueOrDie();
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, so functions can `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, so functions can
  /// `return Status::...`). Calling with an OK status is a programming
  /// error and asserts.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::OK() if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Access the value. Must hold a value.
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Explicitly discards the result, value and error alike — the only
  /// sanctioned way to drop a Result on the floor (see
  /// Status::IgnoreError for when that is legitimate).
  void IgnoreError() const {}

  /// Alias for ValueOrDie, mirroring arrow::Result.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace cods

/// Assigns the value of a Result expression to `lhs`, or returns its
/// Status on error. `lhs` may include a declaration:
///   CODS_ASSIGN_OR_RETURN(auto table, catalog.Get("R"));
#define CODS_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                               \
  if (!result_name.ok()) return result_name.status();       \
  lhs = std::move(result_name).ValueOrDie()

#define CODS_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define CODS_ASSIGN_OR_RETURN_CONCAT(x, y) CODS_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define CODS_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  CODS_ASSIGN_OR_RETURN_IMPL(                                              \
      CODS_ASSIGN_OR_RETURN_CONCAT(_cods_result_, __LINE__), lhs, rexpr)

#endif  // CODS_COMMON_RESULT_H_

// Wall-clock stopwatch used by the benchmark harness and the evolution
// status tracker.
//
// cods-lint: allow-file(wall-clock): this IS the sanctioned timing
// utility; every other clock read should go through it or carry its own
// justification.

#ifndef CODS_COMMON_STOPWATCH_H_
#define CODS_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace cods {

/// Measures elapsed wall time with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cods

#endif  // CODS_COMMON_STOPWATCH_H_

// Env: the file-system boundary of the durability subsystem, in the
// style of RocksDB's Env. All durable I/O (WAL appends, checkpoint
// images, SaveCatalog) goes through this interface so that
//   * every failure carries errno detail in its Status, and
//   * a FaultInjectionEnv decorator can deterministically simulate
//     crashes, torn writes, dropped un-synced data, failed fsyncs, and
//     bit flips — the recovery test harness (tests/test_recovery.cc)
//     proves crash safety against exactly this model.
//
// Durability model (what PosixEnv guarantees, what FaultInjectionEnv
// simulates):
//   * WritableFile::Append buffers in the OS — data is durable only
//     after a successful Sync (fsync).
//   * RenameFile is atomic with respect to crashes and, because the
//     parent directory is fsync'd, durable once it returns OK. The same
//     holds for DeleteFile.
//   * A crash loses any suffix of un-synced appends (possibly torn mid-
//     record, possibly with garbage bits in the torn part); synced data
//     and completed renames/deletes survive.

#ifndef CODS_COMMON_ENV_H_
#define CODS_COMMON_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace cods {

/// An open file being appended to. Not thread-safe.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `n` bytes. Durable only after Sync().
  virtual Status Append(const void* data, size_t n) = 0;

  /// Forces appended data to stable storage (fsync).
  virtual Status Sync() = 0;

  /// Closes the file. Does NOT imply Sync.
  virtual Status Close() = 0;
};

/// File-system operations. Implementations: PosixEnv (Env::Default())
/// and FaultInjectionEnv.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens a file for writing: truncated to empty, or positioned at the
  /// end when `append` is set (creating it either way).
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) = 0;

  /// Reads a whole file.
  virtual Result<std::vector<uint8_t>> ReadFile(const std::string& path) = 0;

  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;

  /// Atomically replaces `to` with `from`; durable on OK return (the
  /// parent directory is fsync'd).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Removes a file; durable on OK return.
  virtual Status DeleteFile(const std::string& path) = 0;

  /// Truncates (or extends with zeros) a closed file to `size` bytes.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  virtual Status CreateDirIfMissing(const std::string& path) = 0;

  /// Names of directory entries, sorted ("." and ".." excluded).
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  /// The process-wide POSIX environment.
  static Env* Default();
};

/// Writes `data` to `path` non-atomically (open-truncate, append, sync,
/// close). Harness helper; durable paths want WriteFileAtomic.
Status WriteFile(Env* env, const std::string& path,
                 const std::vector<uint8_t>& data);

/// Writes `data` via temp file + Sync + atomic rename, so a crash at any
/// point leaves either the old file or the complete new one — never a
/// partial image. The temp file is `path` + ".tmp".
Status WriteFileAtomic(Env* env, const std::string& path,
                       const std::vector<uint8_t>& data);

// ---- Fault injection --------------------------------------------------------

/// Decorates a base Env with a deterministic (seeded) crash model for
/// the recovery harness. Every fault-relevant operation (append, sync,
/// close, rename, delete, truncate, open-for-write, mkdir) increments an
/// operation counter; when the counter reaches `crash_at_op`, the env
/// "crashes":
///   * the tripping operation fails (a rename/delete does not happen; an
///     append's bytes count as un-synced),
///   * every file's un-synced suffix is — per seeded draw — dropped
///     entirely, kept entirely, or torn at a random byte, optionally
///     with a bit flipped inside the surviving un-synced part, and
///   * all subsequent operations fail with "simulated crash".
/// Re-opening the directory with a fresh env then sees exactly what a
/// real post-crash mount would. Independently, FailNextSyncs(n) makes
/// the next n Sync() calls fail with IOError *without* crashing, to
/// exercise fsync-failure handling.
///
/// Model simplifications (documented contract, matching PosixEnv's
/// guarantees): RenameFile and DeleteFile are atomic + immediately
/// durable; directory creation is durable.
class FaultInjectionEnv : public Env {
 public:
  FaultInjectionEnv(Env* base, uint64_t seed);
  ~FaultInjectionEnv() override = default;

  /// Arms the crash at the op with 1-based index `op` (0 disarms).
  void SetCrashAtOp(uint64_t op) { crash_at_op_ = op; }
  /// Makes the next `n` Sync() calls fail without crashing.
  void FailNextSyncs(int n) { fail_syncs_ = n; }
  /// Makes the next `n` Append() calls fail without crashing and
  /// without writing any bytes — a full disk / EIO on write, as opposed
  /// to FailNextSyncs' lost fsync acknowledgment.
  void FailNextAppends(int n) { fail_appends_ = n; }

  bool crashed() const { return crashed_; }
  /// Fault-relevant operations seen so far.
  uint64_t op_count() const { return ops_; }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override;
  Result<std::vector<uint8_t>> ReadFile(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;

 private:
  friend class FaultInjectionWritableFile;

  struct FileState {
    uint64_t synced_size = 0;  // bytes guaranteed to survive a crash
    uint64_t size = 0;         // bytes written so far
  };

  /// Counts one fault-relevant op. Returns non-OK if the env already
  /// crashed or if this op trips the crash.
  Status MaybeFault();
  /// Applies the data-loss model to the real file system.
  void ApplyCrash();

  Env* base_;
  Rng rng_;
  uint64_t ops_ = 0;
  uint64_t crash_at_op_ = 0;
  int fail_syncs_ = 0;
  int fail_appends_ = 0;
  bool crashed_ = false;
  std::map<std::string, FileState> files_;
};

}  // namespace cods

#endif  // CODS_COMMON_ENV_H_

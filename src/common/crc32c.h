// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every WAL record and the v2 database-image footer.
// Software slice-by-4 table implementation — no SSE4.2 dependency, same
// results everywhere. Single-bit errors are always detected, which the
// serde/WAL corruption sweeps rely on.

#ifndef CODS_COMMON_CRC32C_H_
#define CODS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace cods::crc32c {

/// Extends `crc` (the CRC32C of some prior byte string A) with the bytes
/// of B, returning the CRC32C of A ++ B.
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// CRC32C of one contiguous buffer.
inline uint32_t Value(const void* data, size_t n) {
  return Extend(0, data, n);
}

// Stored CRCs are masked (LevelDB-style rotate-and-add) so a payload
// that itself embeds CRC-carrying records — a WAL statement quoting WAL
// bytes, a checkpoint of a catalog holding log text — cannot reproduce
// its own stored checksum ("CRC of a CRC" degeneracy).
inline constexpr uint32_t kMaskDelta = 0xa282ead8ul;

/// Masked form for storing in files.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

/// Inverse of Mask.
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace cods::crc32c

#endif  // CODS_COMMON_CRC32C_H_

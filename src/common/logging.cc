#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace cods {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<LogSink> g_log_sink{nullptr};

// Serializes emission so concurrent worker threads never interleave
// lines (and custom sinks need no locking of their own).
std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

void StderrSink(LogLevel /*level*/, const char* line) {
  std::fputs(line, stderr);
}

void Emit(LogLevel level, const std::string& line) {
  LogSink sink = g_log_sink.load(std::memory_order_acquire);
  if (sink == nullptr) sink = &StderrSink;
  std::lock_guard<std::mutex> lock(SinkMutex());
  sink(level, line.c_str());
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  g_log_sink.store(sink, std::memory_order_release);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_log_level.load(std::memory_order_relaxed)) {
    stream_ << "\n";
    Emit(level_, stream_.str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  // Bypasses the sink mutex: a CHECK may fire while the current thread
  // already holds it (inside a sink), and we are aborting anyway.
  std::fputs(stream_.str().c_str(), stderr);
  std::abort();
}

}  // namespace internal
}  // namespace cods

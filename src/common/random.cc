#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace cods {

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  CODS_DCHECK(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::string Rng::NextString(size_t length) {
  std::string out(length, 'a');
  for (char& c : out) {
    c = static_cast<char>('a' + Uniform(0, 25));
  }
  return out;
}

std::vector<uint64_t> Rng::Permutation(uint64_t n) {
  std::vector<uint64_t> out(n);
  std::iota(out.begin(), out.end(), uint64_t{0});
  std::shuffle(out.begin(), out.end(), engine_);
  return out;
}

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), cdf_(n) {
  CODS_CHECK(n > 0) << "ZipfSampler needs a non-empty domain";
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& w : cdf_) w /= total;
}

uint64_t ZipfSampler::Next(Rng& rng) {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace cods

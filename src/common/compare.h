// Comparison operators over Values — the shared vocabulary of every
// predicate surface: PARTITION TABLE conditions (evolution), the query
// expression AST (query/expr.h), and the statement parser. Lives in
// common/ so the query layer does not depend on the evolution layer for
// an enum.

#ifndef CODS_COMMON_COMPARE_H_
#define CODS_COMMON_COMPARE_H_

#include "storage/value.h"

namespace cods {

/// Comparison operator of a `column op literal` predicate.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Script syntax of the operator ("=", "!=", "<", "<=", ">", ">=").
const char* CompareOpToString(CompareOp op);

/// Evaluates `lhs op rhs` with Value ordering. All six operators derive
/// from the total order (equality is order-equivalence), so int64 3 and
/// double 3.0 compare equal here even though Value::operator== (variant
/// equality) distinguishes them.
bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs);

/// The operator selecting exactly the complement: NOT (x op v) is
/// (x NegateCompareOp(op) v) for every pair of Values, since Value
/// ordering is total. The expression compiler uses this to lower NOT
/// over a comparison without a bitmap complement.
CompareOp NegateCompareOp(CompareOp op);

/// Renders a literal so the statement parser reads back the same value:
/// strings are single-quoted with embedded quotes doubled (SQL style),
/// doubles print with shortest-round-trip precision and always carry a
/// point/exponent so they re-parse as doubles. Shared by Smo::ToString
/// and Expr::ToString so SMO and query rendering cannot diverge.
std::string FormatScriptLiteral(const Value& value);

}  // namespace cods

#endif  // CODS_COMMON_COMPARE_H_

// Comparison operators over Values — the shared vocabulary of every
// predicate surface: PARTITION TABLE conditions (evolution), the query
// expression AST (query/expr.h), and the statement parser. Only the
// operator enum and its algebra live here; evaluating an operator
// against actual Values needs the Value total order and lives one layer
// up in storage/value_compare.h, keeping common/ dependency-free.

#ifndef CODS_COMMON_COMPARE_H_
#define CODS_COMMON_COMPARE_H_

namespace cods {

/// Comparison operator of a `column op literal` predicate.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Script syntax of the operator ("=", "!=", "<", "<=", ">", ">=").
const char* CompareOpToString(CompareOp op);

/// The operator selecting exactly the complement: NOT (x op v) is
/// (x NegateCompareOp(op) v) for every pair of Values, since Value
/// ordering is total. The expression compiler uses this to lower NOT
/// over a comparison without a bitmap complement.
CompareOp NegateCompareOp(CompareOp op);

}  // namespace cods

#endif  // CODS_COMMON_COMPARE_H_

// ScriptLog: the engine-facing slice of the write-ahead log.
//
// The evolution engine logs statement scripts before (or, in snapshot
// mode, while) committing them, but sits below the durability layer in
// the architecture; this interface inverts that dependency. The engine
// sees only the three-call commit protocol; durability/wal.h implements
// it with the real length-prefixed, CRC32C-checksummed, fsync-at-commit
// record format.

#ifndef CODS_COMMON_SCRIPT_LOG_H_
#define CODS_COMMON_SCRIPT_LOG_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace cods {

/// Redo-log protocol for one statement script: BeginScript, one
/// AppendStatement per statement, then CommitScript — which makes the
/// whole script durable and carries the count of statements that
/// succeeded in memory (so mid-script failures replay as exact
/// prefixes). Any non-OK return poisons the script: the caller must not
/// acknowledge it as committed.
class ScriptLog {
 public:
  virtual ~ScriptLog() = default;

  /// Opens a script. Not yet durable (the commit carries the fsync).
  virtual Status BeginScript() = 0;
  /// Logs one statement of the open script. Not yet durable.
  virtual Status AppendStatement(const std::string& text) = 0;
  /// Closes the open script and makes it durable. `applied` = statements
  /// that succeeded in memory.
  virtual Status CommitScript(uint32_t applied) = 0;
};

}  // namespace cods

#endif  // CODS_COMMON_SCRIPT_LOG_H_

// Small string helpers used by the CSV loader, the SMO parser, and the
// table printer.

#ifndef CODS_COMMON_STRING_UTIL_H_
#define CODS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cods {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Upper-cases ASCII letters.
std::string ToUpper(std::string_view s);
/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `s` parses as a (possibly signed) decimal integer.
bool LooksLikeInt(std::string_view s);
/// True if `s` parses as a floating point literal (and is not an int).
bool LooksLikeDouble(std::string_view s);

}  // namespace cods

#endif  // CODS_COMMON_STRING_UTIL_H_

// Status: error propagation without exceptions, in the style of
// Arrow / RocksDB. Library code returns Status (or Result<T>) instead of
// throwing; callers either handle the error or propagate it with
// CODS_RETURN_NOT_OK.

#ifndef CODS_COMMON_STATUS_H_
#define CODS_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace cods {

/// Machine-readable category of an error carried by Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kKeyError = 2,          // lookup failed (missing table/column/value)
  kAlreadyExists = 3,     // name collision on create/rename/copy
  kOutOfRange = 4,        // index or position outside the valid range
  kNotImplemented = 5,
  kIOError = 6,
  kCorruption = 7,        // internal invariant violated in stored data
  kTypeError = 8,         // value/type mismatch
  kConstraintViolation = 9,  // key/FD precondition does not hold
  kCancelled = 10,        // work skipped because a prerequisite failed
  kAborted = 11,          // optimistic commit lost a write-write conflict
  kUnavailable = 12,      // server overloaded or draining; retry later
  kTimedOut = 13,         // statement missed its admission/exec deadline
};

/// One past the largest StatusCode value; used by the exhaustive
/// wire-mapping coverage test to enumerate every code.
inline constexpr int kNumStatusCodes = 14;

/// Returns a stable human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to return in the OK case
/// (a single pointer that is null on success).
///
/// The class is [[nodiscard]]: every function returning a Status forces
/// its caller to look at it. Deliberate discards (best-effort cleanup on
/// an already-failing path) must say so with IgnoreError(), which shows
/// up in review; -Werror=unused-result turns silent drops into build
/// failures in every CI config.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Factory helpers, one per StatusCode.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  /// Error message; empty for OK.
  const std::string& message() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsKeyError() const { return code() == StatusCode::kKeyError; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsConstraintViolation() const {
    return code() == StatusCode::kConstraintViolation;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Prefixes the message with additional context, keeping the code.
  Status WithContext(const std::string& context) const;

  /// Explicitly discards the status. The only sanctioned way to drop a
  /// Status on the floor — reserve it for best-effort cleanup where a
  /// failure genuinely changes nothing (and say why in a comment).
  void IgnoreError() const {}

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Null iff OK; keeps sizeof(Status) == sizeof(void*).
  std::unique_ptr<State> state_;
};

}  // namespace cods

/// Propagates a non-OK Status to the caller.
#define CODS_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::cods::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (false)

#endif  // CODS_COMMON_STATUS_H_

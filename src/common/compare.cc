#include "common/compare.h"

namespace cods {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp NegateCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return op;
}

}  // namespace cods

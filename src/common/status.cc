#include "common/status.h"

namespace cods {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kKeyError:
      return "Key error";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kConstraintViolation:
      return "Constraint violation";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "Timed out";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(msg)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ == nullptr ? EmptyString() : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(state_->code, context + ": " + state_->msg);
}

}  // namespace cods

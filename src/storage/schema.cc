#include "storage/schema.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"

namespace cods {

Schema::Schema(std::vector<ColumnSpec> columns, std::vector<std::string> key)
    : columns_(std::move(columns)), key_(std::move(key)) {}

Result<Schema> Schema::Make(std::vector<ColumnSpec> columns,
                            std::vector<std::string> key) {
  std::unordered_set<std::string> seen;
  for (const ColumnSpec& c : columns) {
    if (c.name.empty()) {
      return Status::InvalidArgument("empty column name");
    }
    if (!seen.insert(c.name).second) {
      return Status::InvalidArgument("duplicate column name '" + c.name +
                                     "'");
    }
  }
  std::unordered_set<std::string> key_seen;
  for (const std::string& k : key) {
    if (seen.find(k) == seen.end()) {
      return Status::InvalidArgument("key column '" + k +
                                     "' is not a column of the schema");
    }
    if (!key_seen.insert(k).second) {
      return Status::InvalidArgument("duplicate key column '" + k + "'");
    }
  }
  return Schema(std::move(columns), std::move(key));
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::KeyError("no column named '" + name + "'");
}

bool Schema::HasColumn(const std::string& name) const {
  return ColumnIndex(name).ok();
}

Result<size_t> Schema::ResolveColumnRef(const std::string& ref) const {
  if (auto exact = ColumnIndex(ref); exact.ok()) return exact;
  // A plain reference may name a qualified column `t.c` by its suffix,
  // provided exactly one column matches.
  if (ref.find('.') == std::string::npos) {
    const std::string suffix = "." + ref;
    std::vector<size_t> candidates;
    for (size_t i = 0; i < columns_.size(); ++i) {
      const std::string& name = columns_[i].name;
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        candidates.push_back(i);
      }
    }
    if (candidates.size() == 1) return candidates[0];
    if (candidates.size() > 1) {
      std::string msg = "ambiguous column '" + ref + "': candidates";
      for (size_t i = 0; i < candidates.size(); ++i) {
        msg += (i == 0 ? " " : ", ") + columns_[candidates[i]].name;
      }
      return Status::InvalidArgument(msg);
    }
  }
  return Status::KeyError("no column named '" + ref + "'");
}

Result<std::vector<size_t>> Schema::KeyIndices() const {
  std::vector<size_t> out;
  out.reserve(key_.size());
  for (const std::string& k : key_) {
    CODS_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(k));
    out.push_back(idx);
  }
  return out;
}

bool Schema::IsKey(const std::vector<std::string>& names) const {
  if (key_.empty() || names.size() != key_.size()) return false;
  std::vector<std::string> a = names;
  std::vector<std::string> b = key_;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

Result<Schema> Schema::RenameColumn(const std::string& from,
                                    const std::string& to) const {
  CODS_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(from));
  if (from != to && HasColumn(to)) {
    return Status::AlreadyExists("column '" + to + "' already exists");
  }
  std::vector<ColumnSpec> cols = columns_;
  cols[idx].name = to;
  std::vector<std::string> key = key_;
  for (std::string& k : key) {
    if (k == from) k = to;
  }
  return Schema(std::move(cols), std::move(key));
}

Result<Schema> Schema::AddColumn(const ColumnSpec& spec) const {
  if (HasColumn(spec.name)) {
    return Status::AlreadyExists("column '" + spec.name + "' already exists");
  }
  std::vector<ColumnSpec> cols = columns_;
  cols.push_back(spec);
  return Schema(std::move(cols), key_);
}

Result<Schema> Schema::DropColumn(const std::string& name) const {
  CODS_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(name));
  for (const std::string& k : key_) {
    if (k == name) {
      return Status::ConstraintViolation(
          "cannot drop key column '" + name +
          "'; change the key declaration first");
    }
  }
  std::vector<ColumnSpec> cols = columns_;
  cols.erase(cols.begin() + static_cast<ptrdiff_t>(idx));
  return Schema(std::move(cols), key_);
}

std::vector<std::string> Schema::ColumnNames() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (const ColumnSpec& c : columns_) out.push_back(c.name);
  return out;
}

bool Schema::SameLayout(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeToString(columns_[i].type);
    if (columns_[i].sorted) out += " SORTED";
  }
  if (!key_.empty()) {
    out += ", key=(" + Join(key_, ", ") + ")";
  }
  out += ")";
  return out;
}

}  // namespace cods

// The catalog: the named set of tables the evolution engine operates on.
// Schema-only SMOs (CREATE/DROP/RENAME TABLE) are pure catalog edits;
// data-level SMOs swap table entries whose columns share storage with
// their predecessors.

#ifndef CODS_STORAGE_CATALOG_H_
#define CODS_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace cods {

/// Name → table mapping with Status-returning mutations.
class Catalog {
 public:
  Catalog() = default;

  // Catalogs own the authoritative table map; copying one would silently
  // fork the database, so forbid it (move is fine).
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) noexcept = default;
  Catalog& operator=(Catalog&&) noexcept = default;

  /// Registers a table under table->name(). Fails if the name is taken.
  Status AddTable(std::shared_ptr<const Table> table);

  /// Replaces or inserts a table under table->name().
  void PutTable(std::shared_ptr<const Table> table);

  /// Looks up a table.
  Result<std::shared_ptr<const Table>> GetTable(
      const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Removes a table. Fails if missing.
  Status DropTable(const std::string& name);

  /// Renames a table (data untouched). Fails if `from` is missing or
  /// `to` exists.
  Status RenameTable(const std::string& from, const std::string& to);

  /// Table names in sorted order.
  std::vector<std::string> TableNames() const;

  size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, std::shared_ptr<const Table>> tables_;
};

}  // namespace cods

#endif  // CODS_STORAGE_CATALOG_H_

// The catalog: the named set of tables the evolution engine operates on.
// Schema-only SMOs (CREATE/DROP/RENAME TABLE) are pure catalog edits;
// data-level SMOs swap table entries whose columns share storage with
// their predecessors.

#ifndef CODS_STORAGE_CATALOG_H_
#define CODS_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace cods {

/// The name → table operations an SMO interpreter needs. The evolution
/// engine executes against this interface, so the same operator code
/// runs both directly on a Catalog and on a staged overlay (see
/// plan/staged_catalog.h) whose effects commit later.
class TableStore {
 public:
  virtual ~TableStore() = default;

  /// Registers a table under table->name(). Fails if the name is taken.
  virtual Status AddTable(std::shared_ptr<const Table> table) = 0;

  /// Replaces or inserts a table under table->name().
  virtual void PutTable(std::shared_ptr<const Table> table) = 0;

  /// Looks up a table.
  virtual Result<std::shared_ptr<const Table>> GetTable(
      const std::string& name) const = 0;

  virtual bool HasTable(const std::string& name) const = 0;

  /// Removes a table. Fails if missing.
  virtual Status DropTable(const std::string& name) = 0;

  /// Renames a table (data untouched). Fails if `from` is missing or
  /// `to` exists.
  virtual Status RenameTable(const std::string& from,
                             const std::string& to) = 0;
};

/// Name → table mapping with Status-returning mutations.
class Catalog : public TableStore {
 public:
  Catalog() = default;

  // Catalogs own the authoritative table map; copying one would silently
  // fork the database, so forbid it (move is fine).
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) noexcept = default;
  Catalog& operator=(Catalog&&) noexcept = default;

  Status AddTable(std::shared_ptr<const Table> table) override;
  void PutTable(std::shared_ptr<const Table> table) override;
  Result<std::shared_ptr<const Table>> GetTable(
      const std::string& name) const override;
  bool HasTable(const std::string& name) const override;
  Status DropTable(const std::string& name) override;
  Status RenameTable(const std::string& from, const std::string& to) override;

  /// Table names in sorted order.
  std::vector<std::string> TableNames() const;

  size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, std::shared_ptr<const Table>> tables_;
};

}  // namespace cods

#endif  // CODS_STORAGE_CATALOG_H_

// Bitmap-indexed column (CODS §2.2): a column with v distinct values over
// r rows is stored as a dictionary plus v bit vectors of length r —
// vector k has bit j set iff row j holds value k. Each bit vector is held
// behind the density-adaptive codec (bitmap/codec.h): sparse values as
// sorted position arrays, mixed ones as the paper's WAH runs, dense ones
// as raw bitset words, chosen deterministically per value. An optional
// run-length encoding is used instead when the column is declared sorted.
//
// Columns are immutable once built and shared between tables via
// shared_ptr: reusing an unchanged column during evolution (Property 1 of
// §2.4) is a pointer copy, exactly the effect the paper exploits.

#ifndef CODS_STORAGE_COLUMN_H_
#define CODS_STORAGE_COLUMN_H_

#include <memory>
#include <vector>

#include "bitmap/codec.h"
#include "bitmap/rle.h"
#include "bitmap/wah_bitmap.h"
#include "common/result.h"
#include "storage/dictionary.h"
#include "storage/value.h"

namespace cods {

// The parallel build/decode/validate members take an execution context
// but storage sits below exec in the layering: the context is only ever
// passed through by pointer, and the exec-using member definitions live
// in exec/parallel_build.cc, one layer up.
class ExecContext;

/// Physical encoding of a column.
enum class ColumnEncoding : uint8_t {
  kWahBitmap = 0,  // dictionary + per-value codec bitmaps (default)
  kRle = 1,        // dictionary + run-length-encoded vid sequence
};

const char* ColumnEncodingToString(ColumnEncoding encoding);

/// An immutable column of one table.
class Column {
 public:
  /// Builds a WAH-bitmap column from a row-ordered vid sequence. The
  /// bitmap compression runs on `ctx` (nullptr: default context); the
  /// result is bit-identical at every thread count.
  static std::shared_ptr<Column> FromVids(DataType type, Dictionary dict,
                                          const std::vector<Vid>& vids,
                                          const ExecContext* ctx = nullptr);

  /// Builds an RLE column from a row-ordered vid sequence.
  static std::shared_ptr<Column> FromVidsRle(DataType type, Dictionary dict,
                                             const std::vector<Vid>& vids);

  /// Builds an RLE column from an already-encoded run vector
  /// (persistence path).
  static std::shared_ptr<Column> FromRle(DataType type, Dictionary dict,
                                         RleVector rle);

  /// Builds directly from prepared WAH bitmaps (used by the evolution
  /// operators, which emit compressed bitmaps natively on the WAH
  /// interchange form). Each bitmap is re-encoded into its density-chosen
  /// codec container (on `ctx` when given — bit-identical either way,
  /// since the representation choice is a pure function of content).
  /// Every bitmap must have length `rows`, and each row must be covered
  /// by exactly one bitmap (checked lazily by ValidateInvariants).
  static std::shared_ptr<Column> FromBitmaps(DataType type, Dictionary dict,
                                             std::vector<WahBitmap> bitmaps,
                                             uint64_t rows,
                                             const ExecContext* ctx = nullptr);

  /// Builds from already codec-encoded value bitmaps (the position-filter
  /// and persistence paths, whose kernels produce ValueBitmaps natively).
  static std::shared_ptr<Column> FromValueBitmaps(
      DataType type, Dictionary dict, std::vector<ValueBitmap> bitmaps,
      uint64_t rows);

  DataType type() const { return type_; }
  ColumnEncoding encoding() const { return encoding_; }
  uint64_t rows() const { return rows_; }
  const Dictionary& dict() const { return dict_; }
  size_t distinct_count() const { return dict_.size(); }

  /// The codec-encoded bitmap of value id `vid`. Only valid for
  /// kWahBitmap columns.
  const ValueBitmap& bitmap(Vid vid) const;
  /// All value bitmaps (kWahBitmap only), indexed by vid.
  const std::vector<ValueBitmap>& bitmaps() const;

  /// The RLE payload. Only valid for kRle columns.
  const RleVector& rle() const;

  /// Decodes the column into a row-ordered vid vector.
  /// Cost: O(rows + compressed words); bitmap decoding parallelizes over
  /// value bitmaps (their set positions are disjoint).
  std::vector<Vid> DecodeVids(const ExecContext* ctx = nullptr) const;

  /// Value at `row` (point lookup; O(compressed words) for bitmap
  /// encoding — use DecodeVids for scans).
  Value GetValue(uint64_t row) const;

  /// Number of rows holding `vid` (popcount on the compressed bitmap).
  uint64_t ValueCount(Vid vid) const;

  /// Re-encodes to the requested encoding (returns this when already so).
  std::shared_ptr<Column> WithEncoding(ColumnEncoding encoding) const;

  /// Compressed footprint of the column data (bitmaps or RLE runs) plus
  /// the dictionary.
  uint64_t SizeBytes() const;

  /// Verifies structural invariants: every bitmap has length rows(); the
  /// bitmaps partition the row set (each row covered exactly once); the
  /// dictionary and bitmap count agree. O(distinct * compressed words);
  /// the per-bitmap checks parallelize over value bitmaps.
  Status ValidateInvariants(const ExecContext* ctx = nullptr) const;

 private:
  Column() = default;

  DataType type_ = DataType::kInt64;
  ColumnEncoding encoding_ = ColumnEncoding::kWahBitmap;
  Dictionary dict_;
  std::vector<ValueBitmap> bitmaps_;  // kWahBitmap: indexed by vid
  RleVector rle_;                   // kRle
  uint64_t rows_ = 0;
};

}  // namespace cods

#endif  // CODS_STORAGE_COLUMN_H_

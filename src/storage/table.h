// Tables: a schema plus one immutable Column per attribute. Columns are
// held by shared_ptr so evolution operators can move a column from an old
// table to a new one without touching its data — the "reuse unchanged
// columns" effect of §2.4 Property 1 costs one pointer copy per column.

#ifndef CODS_STORAGE_TABLE_H_
#define CODS_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/column.h"
#include "storage/schema.h"

namespace cods {

/// An immutable column-store table.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema,
        std::vector<std::shared_ptr<const Column>> columns, uint64_t rows);

  /// Validated factory: all columns must have `rows` rows and match the
  /// schema's types and arity.
  static Result<std::shared_ptr<const Table>> Make(
      std::string name, Schema schema,
      std::vector<std::shared_ptr<const Column>> columns, uint64_t rows);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint64_t rows() const { return rows_; }
  size_t num_columns() const { return columns_.size(); }

  const std::shared_ptr<const Column>& column(size_t i) const {
    return columns_[i];
  }
  Result<std::shared_ptr<const Column>> ColumnByName(
      const std::string& name) const;

  /// Resolves a column REFERENCE (Schema::ResolveColumnRef semantics),
  /// additionally accepting `<table name>.<col>` for this table's own
  /// columns — so `SELECT R.Employee FROM R` binds on a plain table and
  /// qualified references bind on cross-table result schemas alike.
  Result<size_t> ResolveColumnRef(const std::string& ref) const;
  Result<std::shared_ptr<const Column>> ColumnByRef(
      const std::string& ref) const;

  /// Value at (row, column); point lookup, O(compressed words).
  Value GetValue(uint64_t row, size_t col) const;

  /// Materializes all tuples (decompression; used by the query-level
  /// baseline and by display).
  std::vector<Row> Materialize() const;
  /// Materializes the first `limit` tuples.
  std::vector<Row> Materialize(uint64_t limit) const;

  /// A copy of this table under a different name, sharing all columns.
  std::shared_ptr<const Table> WithName(const std::string& name) const;

  /// Total compressed footprint of columns + dictionaries.
  uint64_t SizeBytes() const;

  /// Validates per-column invariants plus schema/column agreement.
  /// Parallel over columns; the first failing column (in schema order)
  /// determines the returned Status.
  Status ValidateInvariants(const ExecContext* ctx = nullptr) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::shared_ptr<const Column>> columns_;
  uint64_t rows_ = 0;
};

/// Checks that `v` may be stored in a column described by `spec`
/// (non-null, matching type). Shared by every row-ingest path so the
/// rules and error messages cannot diverge.
Status ValidateValueForColumn(const Value& v, const ColumnSpec& spec);

/// Builds a table row-by-row, dictionary-encoding on the fly.
class TableBuilder {
 public:
  TableBuilder(std::string name, Schema schema);

  /// Appends one tuple; its arity and value types must match the schema.
  Status AppendRow(const Row& row);

  /// Number of rows appended so far.
  uint64_t rows() const { return rows_; }

  /// Finishes construction. Columns declared `sorted` are RLE-encoded,
  /// all others get WAH bitmaps. The builder is consumed.
  Result<std::shared_ptr<const Table>> Finish();

 private:
  std::string name_;
  Schema schema_;
  std::vector<Dictionary> dicts_;
  std::vector<std::vector<Vid>> vids_;
  uint64_t rows_ = 0;
};

}  // namespace cods

#endif  // CODS_STORAGE_TABLE_H_

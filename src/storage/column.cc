#include "storage/column.h"

#include "common/logging.h"

namespace cods {

const char* ColumnEncodingToString(ColumnEncoding encoding) {
  switch (encoding) {
    case ColumnEncoding::kWahBitmap:
      return "WAH_BITMAP";
    case ColumnEncoding::kRle:
      return "RLE";
  }
  return "?";
}

std::shared_ptr<Column> Column::FromVidsRle(DataType type, Dictionary dict,
                                            const std::vector<Vid>& vids) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = type;
  col->encoding_ = ColumnEncoding::kRle;
  col->rows_ = vids.size();
  col->dict_ = std::move(dict);
  for (Vid v : vids) col->rle_.Append(v);
  return col;
}

std::shared_ptr<Column> Column::FromRle(DataType type, Dictionary dict,
                                        RleVector rle) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = type;
  col->encoding_ = ColumnEncoding::kRle;
  col->rows_ = rle.size();
  col->dict_ = std::move(dict);
  col->rle_ = std::move(rle);
  return col;
}

std::shared_ptr<Column> Column::FromValueBitmaps(
    DataType type, Dictionary dict, std::vector<ValueBitmap> bitmaps,
    uint64_t rows) {
  CODS_CHECK(bitmaps.size() == dict.size())
      << "bitmap count " << bitmaps.size() << " != dictionary size "
      << dict.size();
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = type;
  col->encoding_ = ColumnEncoding::kWahBitmap;
  col->rows_ = rows;
  col->dict_ = std::move(dict);
  col->bitmaps_ = std::move(bitmaps);
  return col;
}

const ValueBitmap& Column::bitmap(Vid vid) const {
  CODS_CHECK(encoding_ == ColumnEncoding::kWahBitmap);
  CODS_DCHECK(vid < bitmaps_.size());
  return bitmaps_[vid];
}

const std::vector<ValueBitmap>& Column::bitmaps() const {
  CODS_CHECK(encoding_ == ColumnEncoding::kWahBitmap);
  return bitmaps_;
}

const RleVector& Column::rle() const {
  CODS_CHECK(encoding_ == ColumnEncoding::kRle);
  return rle_;
}

Value Column::GetValue(uint64_t row) const {
  CODS_CHECK(row < rows_);
  if (encoding_ == ColumnEncoding::kRle) {
    return dict_.value(rle_.Get(row));
  }
  for (Vid vid = 0; vid < bitmaps_.size(); ++vid) {
    if (bitmaps_[vid].Get(row)) return dict_.value(vid);
  }
  CODS_CHECK(false) << "row " << row << " not covered by any bitmap";
  return Value();
}

uint64_t Column::ValueCount(Vid vid) const {
  if (encoding_ == ColumnEncoding::kRle) {
    uint64_t count = 0;
    for (const RleVector::Run& r : rle_.runs()) {
      if (r.value == vid) count += r.length;
    }
    return count;
  }
  return bitmaps_[vid].CountOnes();
}

std::shared_ptr<Column> Column::WithEncoding(ColumnEncoding encoding) const {
  if (encoding == encoding_) {
    // Copy: encodings match, columns are immutable, so share structure.
    auto col = std::shared_ptr<Column>(new Column(*this));
    return col;
  }
  std::vector<Vid> vids = DecodeVids();
  if (encoding == ColumnEncoding::kRle) {
    return FromVidsRle(type_, dict_, vids);
  }
  return FromVids(type_, dict_, vids);
}

uint64_t Column::SizeBytes() const {
  uint64_t bytes = dict_.SizeBytes();
  if (encoding_ == ColumnEncoding::kRle) {
    bytes += rle_.SizeBytes();
  } else {
    for (const ValueBitmap& bm : bitmaps_) bytes += bm.SizeBytes();
  }
  return bytes;
}

}  // namespace cods

#include "storage/column.h"

#include <atomic>

#include "exec/parallel_build.h"

namespace cods {

const char* ColumnEncodingToString(ColumnEncoding encoding) {
  switch (encoding) {
    case ColumnEncoding::kWahBitmap:
      return "WAH_BITMAP";
    case ColumnEncoding::kRle:
      return "RLE";
  }
  return "?";
}

namespace {

// Re-encodes freshly built WAH bitmaps into their density-chosen codec
// containers, one task per value. The per-vid results land in pre-sized
// index-ordered slots and the representation choice is a pure function
// of content, so the conversion is bit-identical at every thread count.
std::vector<ValueBitmap> EncodeValueBitmaps(const ExecContext& ctx,
                                            std::vector<WahBitmap> wahs) {
  std::vector<ValueBitmap> out(wahs.size());
  Status st = ParallelFor(ctx, 0, wahs.size(), 16, [&](uint64_t v) {
    out[v] = ValueBitmap::FromWah(std::move(wahs[v]));
    return Status::OK();
  });
  CODS_CHECK(st.ok()) << st.ToString();
  return out;
}

}  // namespace

std::shared_ptr<Column> Column::FromVids(DataType type, Dictionary dict,
                                         const std::vector<Vid>& vids,
                                         const ExecContext* ctx) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = type;
  col->encoding_ = ColumnEncoding::kWahBitmap;
  col->rows_ = vids.size();
  const ExecContext& exec = ResolveContext(ctx);
  col->bitmaps_ = EncodeValueBitmaps(
      exec, BuildValueBitmaps(exec, vids.data(), vids.size(), dict.size()));
  col->dict_ = std::move(dict);
  return col;
}

std::shared_ptr<Column> Column::FromVidsRle(DataType type, Dictionary dict,
                                            const std::vector<Vid>& vids) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = type;
  col->encoding_ = ColumnEncoding::kRle;
  col->rows_ = vids.size();
  col->dict_ = std::move(dict);
  for (Vid v : vids) col->rle_.Append(v);
  return col;
}

std::shared_ptr<Column> Column::FromRle(DataType type, Dictionary dict,
                                        RleVector rle) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = type;
  col->encoding_ = ColumnEncoding::kRle;
  col->rows_ = rle.size();
  col->dict_ = std::move(dict);
  col->rle_ = std::move(rle);
  return col;
}

std::shared_ptr<Column> Column::FromBitmaps(DataType type, Dictionary dict,
                                            std::vector<WahBitmap> bitmaps,
                                            uint64_t rows,
                                            const ExecContext* ctx) {
  CODS_CHECK(bitmaps.size() == dict.size())
      << "bitmap count " << bitmaps.size() << " != dictionary size "
      << dict.size();
  return FromValueBitmaps(
      type, std::move(dict),
      EncodeValueBitmaps(ResolveContext(ctx), std::move(bitmaps)), rows);
}

std::shared_ptr<Column> Column::FromValueBitmaps(
    DataType type, Dictionary dict, std::vector<ValueBitmap> bitmaps,
    uint64_t rows) {
  CODS_CHECK(bitmaps.size() == dict.size())
      << "bitmap count " << bitmaps.size() << " != dictionary size "
      << dict.size();
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = type;
  col->encoding_ = ColumnEncoding::kWahBitmap;
  col->rows_ = rows;
  col->dict_ = std::move(dict);
  col->bitmaps_ = std::move(bitmaps);
  return col;
}

const ValueBitmap& Column::bitmap(Vid vid) const {
  CODS_CHECK(encoding_ == ColumnEncoding::kWahBitmap);
  CODS_DCHECK(vid < bitmaps_.size());
  return bitmaps_[vid];
}

const std::vector<ValueBitmap>& Column::bitmaps() const {
  CODS_CHECK(encoding_ == ColumnEncoding::kWahBitmap);
  return bitmaps_;
}

const RleVector& Column::rle() const {
  CODS_CHECK(encoding_ == ColumnEncoding::kRle);
  return rle_;
}

std::vector<Vid> Column::DecodeVids(const ExecContext* ctx) const {
  if (encoding_ == ColumnEncoding::kRle) {
    return rle_.Decode();
  }
  std::vector<Vid> out(rows_, 0);
  // Value bitmaps partition the row set, so the per-vid writes target
  // disjoint positions — safe to run concurrently, identical result.
  Status st = ParallelFor(
      ResolveContext(ctx), 0, bitmaps_.size(), 16, [&](uint64_t vid) {
        bitmaps_[vid].ForEachSetBit(
            [&](uint64_t pos) { out[pos] = static_cast<Vid>(vid); });
        return Status::OK();
      });
  CODS_CHECK(st.ok()) << st.ToString();
  return out;
}

Value Column::GetValue(uint64_t row) const {
  CODS_CHECK(row < rows_);
  if (encoding_ == ColumnEncoding::kRle) {
    return dict_.value(rle_.Get(row));
  }
  for (Vid vid = 0; vid < bitmaps_.size(); ++vid) {
    if (bitmaps_[vid].Get(row)) return dict_.value(vid);
  }
  CODS_CHECK(false) << "row " << row << " not covered by any bitmap";
  return Value();
}

uint64_t Column::ValueCount(Vid vid) const {
  if (encoding_ == ColumnEncoding::kRle) {
    uint64_t count = 0;
    for (const RleVector::Run& r : rle_.runs()) {
      if (r.value == vid) count += r.length;
    }
    return count;
  }
  return bitmaps_[vid].CountOnes();
}

std::shared_ptr<Column> Column::WithEncoding(ColumnEncoding encoding) const {
  if (encoding == encoding_) {
    // Copy: encodings match, columns are immutable, so share structure.
    auto col = std::shared_ptr<Column>(new Column(*this));
    return col;
  }
  std::vector<Vid> vids = DecodeVids();
  if (encoding == ColumnEncoding::kRle) {
    return FromVidsRle(type_, dict_, vids);
  }
  return FromVids(type_, dict_, vids);
}

uint64_t Column::SizeBytes() const {
  uint64_t bytes = dict_.SizeBytes();
  if (encoding_ == ColumnEncoding::kRle) {
    bytes += rle_.SizeBytes();
  } else {
    for (const ValueBitmap& bm : bitmaps_) bytes += bm.SizeBytes();
  }
  return bytes;
}

Status Column::ValidateInvariants(const ExecContext* ctx) const {
  if (encoding_ == ColumnEncoding::kRle) {
    if (rle_.size() != rows_) {
      return Status::Corruption("RLE length != row count");
    }
    for (const RleVector::Run& r : rle_.runs()) {
      if (r.value >= dict_.size()) {
        return Status::Corruption("RLE vid outside dictionary");
      }
    }
    return Status::OK();
  }
  if (bitmaps_.size() != dict_.size()) {
    return Status::Corruption("bitmap count != dictionary size");
  }
  // Per-bitmap structural + canonical-representation check and popcount,
  // parallel over value bitmaps. The sum is order-independent, so a
  // relaxed atomic accumulation stays deterministic.
  std::atomic<uint64_t> ones{0};
  CODS_RETURN_NOT_OK(ParallelForChunked(
      ResolveContext(ctx), 0, bitmaps_.size(), 16,
      [&](uint64_t lo, uint64_t hi) -> Status {
        uint64_t local = 0;
        for (uint64_t v = lo; v < hi; ++v) {
          CODS_RETURN_NOT_OK(bitmaps_[v].Validate(rows_));
          local += bitmaps_[v].CountOnes();
        }
        ones.fetch_add(local, std::memory_order_relaxed);
        return Status::OK();
      }));
  uint64_t total_ones = ones.load(std::memory_order_relaxed);
  if (total_ones != rows_) {
    return Status::Corruption("bitmaps do not partition rows: " +
                              std::to_string(total_ones) + " ones over " +
                              std::to_string(rows_) + " rows");
  }
  // Coverage = |union of all value bitmaps|, computed by the count-only
  // k-way codec kernel in one pass — the union bitmap is never
  // materialized.
  std::vector<const ValueBitmap*> ptrs;
  ptrs.reserve(bitmaps_.size());
  for (const ValueBitmap& bm : bitmaps_) ptrs.push_back(&bm);
  if (CodecOrManyCount(ptrs, rows_) != rows_) {
    return Status::Corruption("bitmaps overlap or leave gaps");
  }
  return Status::OK();
}

}  // namespace cods

// CSV load/save — the demo's "load data" path. Supports explicit schemas
// and schema inference from a header line plus a sample of the data.

#ifndef CODS_STORAGE_CSV_H_
#define CODS_STORAGE_CSV_H_

#include <memory>
#include <string>

#include "storage/table.h"

namespace cods {

/// Options for CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Rows examined for type inference when no schema is given.
  uint64_t inference_sample_rows = 100;
};

/// Parses CSV text into a table using an explicit schema. The header (if
/// any) is checked against the schema's column names.
Result<std::shared_ptr<const Table>> CsvToTable(
    const std::string& csv_text, const std::string& table_name,
    const Schema& schema, const CsvOptions& options = {});

/// Parses CSV text, inferring column names from the header and types from
/// a data sample (INT64 if every sampled field parses as an integer, else
/// DOUBLE if numeric, else STRING).
Result<std::shared_ptr<const Table>> CsvToTableInferred(
    const std::string& csv_text, const std::string& table_name,
    const CsvOptions& options = {});

/// Loads a CSV file with an explicit schema.
Result<std::shared_ptr<const Table>> LoadCsvFile(
    const std::string& path, const std::string& table_name,
    const Schema& schema, const CsvOptions& options = {});

/// Serializes a table to CSV text (header + rows).
std::string TableToCsv(const Table& table, const CsvOptions& options = {});

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace cods

#endif  // CODS_STORAGE_CSV_H_

// Row-order scans over bitmap-encoded tables. A bitmap column has no
// direct row→value layout; the scanner reconstructs it once per scan in
// O(rows + compressed words) by unioning the per-value set-bit streams,
// then serves tuples sequentially. This is the primitive behind the
// paper's "sequential scan of S" in key–foreign-key mergence and behind
// tuple materialization in the query-level baseline.

#ifndef CODS_STORAGE_SCANNER_H_
#define CODS_STORAGE_SCANNER_H_

#include <memory>
#include <vector>

#include "storage/table.h"

namespace cods {

/// Sequential scanner over a subset of a table's columns.
class TableScanner {
 public:
  /// Scans all columns of `table`.
  explicit TableScanner(const Table& table);
  /// Scans only the columns at `column_indices` (projection).
  TableScanner(const Table& table, std::vector<size_t> column_indices);

  /// Total rows.
  uint64_t rows() const { return rows_; }
  /// Number of scanned columns.
  size_t width() const { return cols_.size(); }

  /// Vid of scanned-column `i` at `row`.
  Vid vid(uint64_t row, size_t i) const { return vids_[i][row]; }

  /// Dictionary of scanned-column `i`.
  const Dictionary& dict(size_t i) const { return cols_[i]->dict(); }

  /// Materializes the tuple at `row` (scanned columns only).
  Row GetRow(uint64_t row) const;

  /// The decoded vid vector for scanned-column `i`.
  const std::vector<Vid>& column_vids(size_t i) const { return vids_[i]; }

 private:
  std::vector<std::shared_ptr<const Column>> cols_;
  std::vector<std::vector<Vid>> vids_;
  uint64_t rows_ = 0;
};

}  // namespace cods

#endif  // CODS_STORAGE_SCANNER_H_

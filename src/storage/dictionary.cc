#include "storage/dictionary.h"

#include "common/logging.h"

namespace cods {

Vid Dictionary::GetOrInsert(const Value& value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  CODS_CHECK(values_.size() < UINT32_MAX) << "dictionary overflow";
  Vid vid = static_cast<Vid>(values_.size());
  values_.push_back(value);
  index_.emplace(value, vid);
  return vid;
}

std::optional<Vid> Dictionary::Lookup(const Value& value) const {
  auto it = index_.find(value);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

uint64_t Dictionary::SizeBytes() const {
  uint64_t bytes = values_.size() * (sizeof(Value) + sizeof(Vid) + 16);
  for (const Value& v : values_) {
    if (v.is_string()) bytes += v.str().capacity();
  }
  return bytes;
}

}  // namespace cods

#include "storage/value.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <sstream>

#include "common/string_util.h"

namespace cods {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

Result<DataType> DataTypeFromString(const std::string& name) {
  std::string up = ToUpper(Trim(name));
  if (up == "INT64" || up == "INT" || up == "INTEGER" || up == "BIGINT") {
    return DataType::kInt64;
  }
  if (up == "DOUBLE" || up == "FLOAT" || up == "REAL") {
    return DataType::kDouble;
  }
  if (up == "STRING" || up == "TEXT" || up == "VARCHAR" || up == "CHAR") {
    return DataType::kString;
  }
  return Status::InvalidArgument("unknown data type '" + name + "'");
}

Result<Value> Value::Parse(const std::string& text, DataType type) {
  std::string t(Trim(text));
  switch (type) {
    case DataType::kInt64: {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
      if (ec != std::errc() || ptr != t.data() + t.size()) {
        return Status::TypeError("'" + t + "' is not an INT64");
      }
      return Value(v);
    }
    case DataType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(t.c_str(), &end);
      if (end != t.c_str() + t.size() || t.empty()) {
        return Status::TypeError("'" + t + "' is not a DOUBLE");
      }
      return Value(v);
    }
    case DataType::kString:
      return Value(std::string(text));
  }
  return Status::TypeError("unsupported type");
}

Result<DataType> Value::type() const {
  if (is_int64()) return DataType::kInt64;
  if (is_double()) return DataType::kDouble;
  if (is_string()) return DataType::kString;
  return Status::TypeError("null value has no type");
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(int64());
  if (is_double()) {
    std::ostringstream out;
    out << dbl();
    return out.str();
  }
  return str();
}

namespace {

// IEEE `<` is not a strict weak ordering in the presence of NaN (NaN is
// incomparable to every number, which would make it order-EQUAL to all
// of them and break both sorting and the order-derived EvalCompare
// equality). Order NaN after every real number instead, so the Value
// order stays total: NaN equals only NaN.
bool DoubleLess(double a, double b) {
  const bool a_nan = std::isnan(a);
  const bool b_nan = std::isnan(b);
  if (a_nan || b_nan) return !a_nan && b_nan;
  return a < b;
}

}  // namespace

bool Value::operator<(const Value& other) const {
  // Order alternatives by index (null < int64 < double < string), except
  // that int64 and double compare numerically against each other.
  if (is_int64() && other.is_double()) {
    return DoubleLess(static_cast<double>(int64()), other.dbl());
  }
  if (is_double() && other.is_int64()) {
    return DoubleLess(dbl(), static_cast<double>(other.int64()));
  }
  if (repr_.index() != other.repr_.index()) {
    return repr_.index() < other.repr_.index();
  }
  if (is_null()) return false;
  if (is_int64()) return int64() < other.int64();
  if (is_double()) return DoubleLess(dbl(), other.dbl());
  return str() < other.str();
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ull;
  if (is_int64()) return std::hash<int64_t>()(int64());
  if (is_double()) return std::hash<double>()(dbl());
  return std::hash<std::string>()(str());
}

size_t RowHash::operator()(const Row& row) const {
  size_t h = 0x2545f4914f6cdd1dull;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace cods

// Binary persistence for the column store: catalogs, tables, columns,
// dictionaries, and WAH bitmaps serialize to a single-file database
// image. The format is little-endian, length-prefixed, and versioned;
// every read is bounds-checked and structural invariants are re-verified
// on load, so truncated or bit-flipped files surface as
// Status::Corruption instead of undefined behavior.
//
// Layout (all integers little-endian):
//   file   := magic:u32 version:u32 table_count:u32 table* footer?
//   footer := wal_lsn:u64 crc:u32          (version >= 2 only)
//   table  := name:str rows:u64 schema column*
//   schema := key_count:u32 key_name* column_count:u32 colspec*
//   colspec:= name:str type:u8 sorted:u8
//   column := type:u8 encoding:u8 rows:u64 dict payload
//   dict   := count:u32 value*
//   value  := tag:u8 (i64 | f64 | str)
//   payload(WAH, v1/v2) := bitmap_count:u32 bitmap*
//   bitmap := num_bits:u64 tail:u64 tail_bits:u8 word_count:u32 word*
//   payload(WAH, v3)    := bitmap_count:u32 vbitmap*
//   vbitmap := rep:u8 (array | bitmap | bitset)     rep = BitmapRep tag
//   array  := pos_count:u32 pos:u32*                (size = column rows)
//   bitset := word_count:u32 word:u64*              (size = column rows)
//   payload(RLE) := run_count:u32 (vid:u32 len:u64)*
//
// Version 2 (the checkpoint format, durability/checkpoint.h) appends a
// 12-byte footer: the WAL LSN the image covers, then the MASKED CRC32C
// (common/crc32c.h) of every preceding byte — so any single bit flip
// anywhere in a v2 image is detected, not just structurally implausible
// ones. Version 1 images (no footer) remain readable.
//
// Version 3 keeps the v2 footer but stores each value bitmap in its
// density-chosen codec container (bitmap/codec.h), tagged per value, so
// images round-trip without re-encoding through WAH. Loads re-validate
// that every tag is the representation ChooseBitmapRep mandates for the
// payload's density. v1 and v2 images (WAH-shaped payloads) remain
// readable; their bitmaps re-encode into codec containers on load.

#ifndef CODS_STORAGE_SERDE_H_
#define CODS_STORAGE_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "storage/table.h"

namespace cods {

/// Format identification.
inline constexpr uint32_t kCodsFileMagic = 0x434F4453;  // "CODS"
inline constexpr uint32_t kCodsFileVersion = 1;
inline constexpr uint32_t kCodsFileVersionV2 = 2;  // + checksummed footer
inline constexpr uint32_t kCodsFileVersionV3 = 3;  // + codec-tagged bitmaps
/// Footer size of a v2/v3 image: wal_lsn:u64 crc:u32.
inline constexpr size_t kCodsFooterSize = 12;

/// Append-only binary encoder.
class BinaryWriter {
 public:
  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  /// Length-prefixed string.
  void Str(const std::string& s);

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

/// Bounds-checked binary decoder.
class BinaryReader {
 public:
  BinaryReader(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<uint8_t>& buffer)
      : BinaryReader(buffer.data(), buffer.size()) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> F64();
  Result<std::string> Str();

  /// Bytes consumed so far.
  size_t position() const { return pos_; }
  /// True when the whole buffer has been consumed.
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Need(size_t n) const;

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// ---- Component-level serialization (exposed for tests and tools). ---------

void WriteBitmap(const WahBitmap& bitmap, BinaryWriter* out);
Result<WahBitmap> ReadBitmap(BinaryReader* in);

/// One codec-tagged value bitmap (the v3 payload element). The bitmap's
/// logical size is the enclosing column's row count, passed on read.
void WriteValueBitmap(const ValueBitmap& vb, BinaryWriter* out);
Result<ValueBitmap> ReadValueBitmap(BinaryReader* in, uint64_t rows);

void WriteValue(const Value& value, BinaryWriter* out);
Result<Value> ReadValue(BinaryReader* in);

void WriteDictionary(const Dictionary& dict, BinaryWriter* out);
Result<Dictionary> ReadDictionary(BinaryReader* in);

/// `version` selects the bitmap payload shape: v1/v2 write WAH-shaped
/// bitmaps (codec containers re-encode through ToWah), v3 writes
/// codec-tagged containers directly.
void WriteColumn(const Column& column, BinaryWriter* out,
                 uint32_t version = kCodsFileVersion);
Result<std::shared_ptr<const Column>> ReadColumn(
    BinaryReader* in, uint32_t version = kCodsFileVersion);

void WriteSchema(const Schema& schema, BinaryWriter* out);
Result<Schema> ReadSchema(BinaryReader* in);

void WriteTable(const Table& table, BinaryWriter* out,
                uint32_t version = kCodsFileVersion);
Result<std::shared_ptr<const Table>> ReadTable(
    BinaryReader* in, uint32_t version = kCodsFileVersion);

// ---- Whole-database round trips. -------------------------------------------

/// Serializes a catalog into a v1 database image (no footer).
std::vector<uint8_t> SerializeCatalog(const Catalog& catalog);

/// Serializes a catalog into a v2 image whose footer records the WAL
/// LSN the image covers and a CRC32C over the whole image.
std::vector<uint8_t> SerializeCatalogV2(const Catalog& catalog,
                                        uint64_t wal_lsn);

/// Serializes a catalog into a v3 image: codec-tagged per-value bitmap
/// containers, plus the v2-style checksummed footer. The checkpoint and
/// SaveCatalog format.
std::vector<uint8_t> SerializeCatalogV3(const Catalog& catalog,
                                        uint64_t wal_lsn);

/// Parses a database image of any supported version. Each loaded
/// table's invariants are verified; a v2/v3 footer checksum mismatch is
/// Status::Corruption. `wal_lsn` (optional) receives the footer LSN
/// (0 for v1 images).
Result<Catalog> DeserializeCatalog(const std::vector<uint8_t>& image,
                                   uint64_t* wal_lsn = nullptr);

/// Writes a catalog to a database file crash-safely: temp file + fsync +
/// atomic rename, so a failure mid-save never destroys a previous good
/// image. Thin shim over the checkpoint write path (v3 image, LSN 0).
Status SaveCatalog(const Catalog& catalog, const std::string& path);

/// Reads a catalog from a database file (either format version).
Result<Catalog> LoadCatalog(const std::string& path);

}  // namespace cods

#endif  // CODS_STORAGE_SERDE_H_

#include "storage/csv.h"

#include <cerrno>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/string_util.h"

namespace cods {

namespace {

// "cannot open 'x'" alone is useless in production logs; append the
// errno reason the stream left behind ("No such file or directory",
// "Permission denied", ...).
std::string ErrnoDetail() {
  return errno != 0 ? ": " + std::generic_category().message(errno) : "";
}

// Splits CSV text into non-empty lines (no quoting support: the demo data
// and workload generator never emit embedded delimiters).
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  for (std::string& line : Split(text, '\n')) {
    std::string_view trimmed = Trim(line);
    if (!trimmed.empty()) lines.emplace_back(trimmed);
  }
  return lines;
}

Result<std::shared_ptr<const Table>> ParseBody(
    const std::vector<std::string>& lines, size_t first_data_line,
    const std::string& table_name, const Schema& schema,
    const CsvOptions& options) {
  TableBuilder builder(table_name, schema);
  for (size_t i = first_data_line; i < lines.size(); ++i) {
    std::vector<std::string> fields = Split(lines[i], options.delimiter);
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "line " + std::to_string(i + 1) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(schema.num_columns()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      CODS_ASSIGN_OR_RETURN(
          Value v, Value::Parse(std::string(Trim(fields[c])),
                                schema.column(c).type));
      row.push_back(std::move(v));
    }
    CODS_RETURN_NOT_OK(builder.AppendRow(row));
  }
  return builder.Finish();
}

}  // namespace

Result<std::shared_ptr<const Table>> CsvToTable(const std::string& csv_text,
                                                const std::string& table_name,
                                                const Schema& schema,
                                                const CsvOptions& options) {
  std::vector<std::string> lines = SplitLines(csv_text);
  size_t first_data_line = 0;
  if (options.has_header) {
    if (lines.empty()) {
      return Status::InvalidArgument("empty CSV with has_header=true");
    }
    std::vector<std::string> header = Split(lines[0], options.delimiter);
    if (header.size() != schema.num_columns()) {
      return Status::InvalidArgument("header arity does not match schema");
    }
    for (size_t c = 0; c < header.size(); ++c) {
      if (std::string(Trim(header[c])) != schema.column(c).name) {
        return Status::InvalidArgument(
            "header column '" + std::string(Trim(header[c])) +
            "' does not match schema column '" + schema.column(c).name + "'");
      }
    }
    first_data_line = 1;
  }
  return ParseBody(lines, first_data_line, table_name, schema, options);
}

Result<std::shared_ptr<const Table>> CsvToTableInferred(
    const std::string& csv_text, const std::string& table_name,
    const CsvOptions& options) {
  std::vector<std::string> lines = SplitLines(csv_text);
  if (lines.empty()) return Status::InvalidArgument("empty CSV");
  if (!options.has_header) {
    return Status::InvalidArgument(
        "schema inference requires a header line");
  }
  std::vector<std::string> header = Split(lines[0], options.delimiter);
  size_t arity = header.size();
  // Infer a type per column: INT64 ⊂ DOUBLE ⊂ STRING lattice walk.
  std::vector<DataType> types(arity, DataType::kInt64);
  uint64_t sampled = 0;
  for (size_t i = 1; i < lines.size() && sampled < options.inference_sample_rows;
       ++i, ++sampled) {
    std::vector<std::string> fields = Split(lines[i], options.delimiter);
    if (fields.size() != arity) {
      return Status::InvalidArgument("line " + std::to_string(i + 1) +
                                     " arity mismatch during inference");
    }
    for (size_t c = 0; c < arity; ++c) {
      std::string_view f = Trim(fields[c]);
      if (types[c] == DataType::kInt64 && !LooksLikeInt(f)) {
        types[c] = LooksLikeDouble(f) ? DataType::kDouble : DataType::kString;
      } else if (types[c] == DataType::kDouble && !LooksLikeInt(f) &&
                 !LooksLikeDouble(f)) {
        types[c] = DataType::kString;
      }
    }
  }
  std::vector<ColumnSpec> specs;
  specs.reserve(arity);
  for (size_t c = 0; c < arity; ++c) {
    specs.push_back(ColumnSpec{std::string(Trim(header[c])), types[c], false});
  }
  CODS_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(specs)));
  return ParseBody(lines, 1, table_name, schema, options);
}

Result<std::shared_ptr<const Table>> LoadCsvFile(const std::string& path,
                                                 const std::string& table_name,
                                                 const Schema& schema,
                                                 const CsvOptions& options) {
  errno = 0;
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'" + ErrnoDetail());
  std::ostringstream buf;
  buf << in.rdbuf();
  return CsvToTable(buf.str(), table_name, schema, options);
}

std::string TableToCsv(const Table& table, const CsvOptions& options) {
  std::ostringstream out;
  if (options.has_header) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      out << table.schema().column(c).name;
    }
    out << "\n";
  }
  for (const Row& row : table.Materialize()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << options.delimiter;
      out << row[c].ToString();
    }
    out << "\n";
  }
  return out.str();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  errno = 0;
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for write" +
                           ErrnoDetail());
  }
  errno = 0;
  out << TableToCsv(table, options);
  if (!out) {
    return Status::IOError("write to '" + path + "' failed" + ErrnoDetail());
  }
  return Status::OK();
}

}  // namespace cods

#include "storage/scanner.h"

#include "common/logging.h"

namespace cods {

TableScanner::TableScanner(const Table& table) {
  rows_ = table.rows();
  cols_.reserve(table.num_columns());
  vids_.reserve(table.num_columns());
  for (size_t i = 0; i < table.num_columns(); ++i) {
    cols_.push_back(table.column(i));
    vids_.push_back(table.column(i)->DecodeVids());
  }
}

TableScanner::TableScanner(const Table& table,
                           std::vector<size_t> column_indices) {
  rows_ = table.rows();
  cols_.reserve(column_indices.size());
  vids_.reserve(column_indices.size());
  for (size_t idx : column_indices) {
    CODS_CHECK(idx < table.num_columns());
    cols_.push_back(table.column(idx));
    vids_.push_back(table.column(idx)->DecodeVids());
  }
}

Row TableScanner::GetRow(uint64_t row) const {
  CODS_DCHECK(row < rows_);
  Row out;
  out.reserve(cols_.size());
  for (size_t i = 0; i < cols_.size(); ++i) {
    out.push_back(cols_[i]->dict().value(vids_[i][row]));
  }
  return out;
}

}  // namespace cods

#include "storage/value_compare.h"

#include <charconv>

namespace cods {

bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs) {
  // Every operator derives from the total order `<` (equality is
  // order-equivalence: neither side less). This keeps the six operators
  // exact complements of each other — NOT (x op v) == (x negate(op) v)
  // — even across int64/double operands, where variant equality
  // (operator==) and numeric order disagree about 3 vs 3.0.
  switch (op) {
    case CompareOp::kEq:
      return !(lhs < rhs) && !(rhs < lhs);
    case CompareOp::kNe:
      return lhs < rhs || rhs < lhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return !(rhs < lhs);
    case CompareOp::kGt:
      return rhs < lhs;
    case CompareOp::kGe:
      return !(lhs < rhs);
  }
  return false;
}

std::string FormatScriptLiteral(const Value& value) {
  if (value.is_null()) return "NULL";
  if (value.is_int64()) return std::to_string(value.int64());
  if (value.is_double()) {
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value.dbl());
    std::string out(buf, ptr);
    // Keep the token a number-with-a-point so the parser types it as a
    // double rather than an int64.
    if (out.find_first_of(".eEn") == std::string::npos) out += ".0";
    return out;
  }
  std::string out = "'";
  for (char c : value.str()) {
    out += c;
    if (c == '\'') out += '\'';
  }
  out += "'";
  return out;
}

}  // namespace cods

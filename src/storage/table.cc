#include "storage/table.h"

#include "common/logging.h"

namespace cods {

Table::Table(std::string name, Schema schema,
             std::vector<std::shared_ptr<const Column>> columns,
             uint64_t rows)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      columns_(std::move(columns)),
      rows_(rows) {}

Result<std::shared_ptr<const Table>> Table::Make(
    std::string name, Schema schema,
    std::vector<std::shared_ptr<const Column>> columns, uint64_t rows) {
  if (columns.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "column count does not match schema arity");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == nullptr) {
      return Status::InvalidArgument("null column");
    }
    if (columns[i]->rows() != rows) {
      return Status::InvalidArgument(
          "column '" + schema.column(i).name + "' has " +
          std::to_string(columns[i]->rows()) + " rows, table has " +
          std::to_string(rows));
    }
    if (columns[i]->type() != schema.column(i).type) {
      return Status::TypeError("column '" + schema.column(i).name +
                               "' type mismatch");
    }
  }
  return std::make_shared<const Table>(std::move(name), std::move(schema),
                                       std::move(columns), rows);
}

Result<std::shared_ptr<const Column>> Table::ColumnByName(
    const std::string& name) const {
  CODS_ASSIGN_OR_RETURN(size_t idx, schema_.ColumnIndex(name));
  return columns_[idx];
}

Result<size_t> Table::ResolveColumnRef(const std::string& ref) const {
  Result<size_t> direct = schema_.ResolveColumnRef(ref);
  if (direct.ok()) return direct;
  // `<this table>.<col>` strips the qualifier and retries, so the same
  // reference shape works on a plain table and on a join result.
  const std::string prefix = name_ + ".";
  if (ref.size() > prefix.size() && ref.compare(0, prefix.size(), prefix) == 0) {
    Result<size_t> stripped =
        schema_.ResolveColumnRef(ref.substr(prefix.size()));
    if (stripped.ok()) return stripped;
  }
  return direct;
}

Result<std::shared_ptr<const Column>> Table::ColumnByRef(
    const std::string& ref) const {
  CODS_ASSIGN_OR_RETURN(size_t idx, ResolveColumnRef(ref));
  return columns_[idx];
}

Value Table::GetValue(uint64_t row, size_t col) const {
  CODS_CHECK(col < columns_.size());
  return columns_[col]->GetValue(row);
}

std::vector<Row> Table::Materialize() const { return Materialize(rows_); }

std::vector<Row> Table::Materialize(uint64_t limit) const {
  uint64_t n = limit < rows_ ? limit : rows_;
  std::vector<Row> out(n);
  for (Row& r : out) r.resize(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::vector<Vid> vids = columns_[c]->DecodeVids();
    const Dictionary& dict = columns_[c]->dict();
    for (uint64_t r = 0; r < n; ++r) {
      out[r][c] = dict.value(vids[r]);
    }
  }
  return out;
}

std::shared_ptr<const Table> Table::WithName(const std::string& name) const {
  return std::make_shared<const Table>(name, schema_, columns_, rows_);
}

uint64_t Table::SizeBytes() const {
  uint64_t bytes = 0;
  for (const auto& col : columns_) bytes += col->SizeBytes();
  return bytes;
}

TableBuilder::TableBuilder(std::string name, Schema schema)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      dicts_(schema_.num_columns()),
      vids_(schema_.num_columns()) {}

Status ValidateValueForColumn(const Value& v, const ColumnSpec& spec) {
  if (v.is_null()) {
    return Status::TypeError("null values are not supported (column '" +
                             spec.name + "')");
  }
  CODS_ASSIGN_OR_RETURN(DataType t, v.type());
  if (t != spec.type) {
    return Status::TypeError("value " + v.ToString() +
                             " does not match column '" + spec.name +
                             "' of type " + DataTypeToString(spec.type));
  }
  return Status::OK();
}

Status TableBuilder::AppendRow(const Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    CODS_RETURN_NOT_OK(ValidateValueForColumn(row[i], schema_.column(i)));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    vids_[i].push_back(dicts_[i].GetOrInsert(row[i]));
  }
  ++rows_;
  return Status::OK();
}

Result<std::shared_ptr<const Table>> TableBuilder::Finish() {
  std::vector<std::shared_ptr<const Column>> columns;
  columns.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    const ColumnSpec& spec = schema_.column(i);
    if (spec.sorted) {
      columns.push_back(
          Column::FromVidsRle(spec.type, std::move(dicts_[i]), vids_[i]));
    } else {
      columns.push_back(
          Column::FromVids(spec.type, std::move(dicts_[i]), vids_[i]));
    }
    vids_[i].clear();
    vids_[i].shrink_to_fit();
  }
  return Table::Make(std::move(name_), std::move(schema_),
                     std::move(columns), rows_);
}

}  // namespace cods

#include "storage/catalog.h"

namespace cods {

Status Catalog::AddTable(std::shared_ptr<const Table> table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

void Catalog::PutTable(std::shared_ptr<const Table> table) {
  CODS_CHECK(table != nullptr);
  tables_[table->name()] = std::move(table);
}

Result<std::shared_ptr<const Table>> Catalog::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::KeyError("no table named '" + name + "'");
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::KeyError("no table named '" + name + "'");
  }
  tables_.erase(it);
  return Status::OK();
}

Status Catalog::RenameTable(const std::string& from, const std::string& to) {
  auto it = tables_.find(from);
  if (it == tables_.end()) {
    return Status::KeyError("no table named '" + from + "'");
  }
  if (from == to) return Status::OK();
  if (tables_.count(to) > 0) {
    return Status::AlreadyExists("table '" + to + "' already exists");
  }
  std::shared_ptr<const Table> renamed = it->second->WithName(to);
  tables_.erase(it);
  tables_.emplace(to, std::move(renamed));
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

}  // namespace cods

// Typed values and rows. Columns are dictionary-encoded, so Value mostly
// appears at the edges (loading, materialization, dictionaries); the
// evolution algorithms themselves work on value ids and bitmaps.

#ifndef CODS_STORAGE_VALUE_H_
#define CODS_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace cods {

/// Column data types supported by the engine.
enum class DataType : uint8_t { kInt64 = 0, kDouble = 1, kString = 2 };

/// Stable name for a data type ("INT64", "DOUBLE", "STRING").
const char* DataTypeToString(DataType type);

/// Parses a type name (case-insensitive, also accepts "INT", "TEXT",
/// "FLOAT", "REAL", "VARCHAR").
Result<DataType> DataTypeFromString(const std::string& name);

/// A single typed value. Null is represented by the monostate
/// alternative and compares less than every non-null value.
class Value {
 public:
  /// Null value.
  Value() = default;
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}
  explicit Value(const char* v) : repr_(std::string(v)) {}

  static Value Null() { return Value(); }

  /// Parses `text` as a value of `type`.
  static Result<Value> Parse(const std::string& text, DataType type);

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  /// Accessors; the alternative must be held.
  int64_t int64() const { return std::get<int64_t>(repr_); }
  double dbl() const { return std::get<double>(repr_); }
  const std::string& str() const { return std::get<std::string>(repr_); }

  /// The DataType of a non-null value; null has no type.
  Result<DataType> type() const;

  /// Text rendering ("NULL", "42", "3.5", "abc").
  std::string ToString() const;

  /// Total order: null < int64/double (by numeric value) < string.
  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  /// Stable hash usable in unordered containers.
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// A materialized tuple.
using Row = std::vector<Value>;

/// Hash / equality over whole rows (used for DISTINCT and join keys).
struct RowHash {
  size_t operator()(const Row& row) const;
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const { return a == b; }
};

}  // namespace cods

#endif  // CODS_STORAGE_VALUE_H_

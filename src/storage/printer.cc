#include "storage/printer.h"

#include <algorithm>
#include <sstream>

namespace cods {

std::string FormatTable(const Table& table, const PrintOptions& options) {
  std::vector<Row> rows = table.Materialize(options.max_rows);
  size_t width = table.num_columns();
  std::vector<size_t> col_width(width);
  std::vector<std::vector<std::string>> cells(rows.size());
  for (size_t c = 0; c < width; ++c) {
    col_width[c] = table.schema().column(c).name.size();
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    cells[r].resize(width);
    for (size_t c = 0; c < width; ++c) {
      cells[r][c] = rows[r][c].ToString();
      col_width[c] = std::max(col_width[c], cells[r][c].size());
    }
  }
  std::ostringstream out;
  auto rule = [&]() {
    out << "+";
    for (size_t c = 0; c < width; ++c) {
      out << std::string(col_width[c] + 2, '-') << "+";
    }
    out << "\n";
  };
  auto line = [&](const std::vector<std::string>& vals) {
    out << "|";
    for (size_t c = 0; c < width; ++c) {
      out << " " << vals[c] << std::string(col_width[c] - vals[c].size(), ' ')
          << " |";
    }
    out << "\n";
  };
  out << table.name() << " " << table.schema().ToString() << "\n";
  rule();
  std::vector<std::string> header(width);
  for (size_t c = 0; c < width; ++c) header[c] = table.schema().column(c).name;
  line(header);
  rule();
  for (const auto& row : cells) line(row);
  rule();
  if (table.rows() > rows.size()) {
    out << "... " << (table.rows() - rows.size()) << " more rows\n";
  }
  if (options.show_footer) {
    out << "(" << table.rows() << " rows)\n";
  }
  return out.str();
}

std::string FormatTableStats(const Table& table) {
  std::ostringstream out;
  out << table.name() << " " << table.schema().ToString() << "\n";
  out << "rows: " << table.rows() << ", compressed bytes: "
      << table.SizeBytes() << "\n";
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const auto& col = table.column(c);
    out << "  " << table.schema().column(c).name << ": "
        << ColumnEncodingToString(col->encoding()) << ", distinct="
        << col->distinct_count() << ", bytes=" << col->SizeBytes() << "\n";
    if (col->encoding() != ColumnEncoding::kWahBitmap) continue;
    // Codec detail: how the density rule distributed this column's
    // value bitmaps, and what they cost next to raw bitsets.
    uint64_t reps[3] = {0, 0, 0};
    uint64_t codec_bytes = 0;
    uint64_t dense_bytes = 0;
    for (Vid v = 0; v < col->distinct_count(); ++v) {
      const ValueBitmap& vb = col->bitmap(v);
      ++reps[static_cast<size_t>(vb.rep())];
      codec_bytes += vb.SizeBytes();
      dense_bytes += vb.DenseSizeBytes();
    }
    out << "    reps: array=" << reps[0] << " wah=" << reps[1]
        << " bitset=" << reps[2] << ", codec bytes=" << codec_bytes
        << ", bitset-equivalent bytes=" << dense_bytes << "\n";
  }
  const CodecStats& stats = GlobalCodecStats();
  out << "codec: popcount cache hits="
      << stats.popcount_hits.load(std::memory_order_relaxed)
      << ", containers built: array="
      << stats.array_built.load(std::memory_order_relaxed)
      << " wah=" << stats.wah_built.load(std::memory_order_relaxed)
      << " bitset=" << stats.bitset_built.load(std::memory_order_relaxed)
      << "\n";
  return out.str();
}

}  // namespace cods

#include "storage/printer.h"

#include <algorithm>
#include <sstream>

namespace cods {

std::string FormatTable(const Table& table, const PrintOptions& options) {
  std::vector<Row> rows = table.Materialize(options.max_rows);
  size_t width = table.num_columns();
  std::vector<size_t> col_width(width);
  std::vector<std::vector<std::string>> cells(rows.size());
  for (size_t c = 0; c < width; ++c) {
    col_width[c] = table.schema().column(c).name.size();
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    cells[r].resize(width);
    for (size_t c = 0; c < width; ++c) {
      cells[r][c] = rows[r][c].ToString();
      col_width[c] = std::max(col_width[c], cells[r][c].size());
    }
  }
  std::ostringstream out;
  auto rule = [&]() {
    out << "+";
    for (size_t c = 0; c < width; ++c) {
      out << std::string(col_width[c] + 2, '-') << "+";
    }
    out << "\n";
  };
  auto line = [&](const std::vector<std::string>& vals) {
    out << "|";
    for (size_t c = 0; c < width; ++c) {
      out << " " << vals[c] << std::string(col_width[c] - vals[c].size(), ' ')
          << " |";
    }
    out << "\n";
  };
  out << table.name() << " " << table.schema().ToString() << "\n";
  rule();
  std::vector<std::string> header(width);
  for (size_t c = 0; c < width; ++c) header[c] = table.schema().column(c).name;
  line(header);
  rule();
  for (const auto& row : cells) line(row);
  rule();
  if (table.rows() > rows.size()) {
    out << "... " << (table.rows() - rows.size()) << " more rows\n";
  }
  if (options.show_footer) {
    out << "(" << table.rows() << " rows)\n";
  }
  return out.str();
}

std::string FormatTableStats(const Table& table) {
  std::ostringstream out;
  out << table.name() << " " << table.schema().ToString() << "\n";
  out << "rows: " << table.rows() << ", compressed bytes: "
      << table.SizeBytes() << "\n";
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const auto& col = table.column(c);
    out << "  " << table.schema().column(c).name << ": "
        << ColumnEncodingToString(col->encoding()) << ", distinct="
        << col->distinct_count() << ", bytes=" << col->SizeBytes() << "\n";
  }
  return out.str();
}

}  // namespace cods

// Per-column dictionary: bijection between distinct values and dense
// value ids (vids). Vids are assigned in first-appearance order, which
// together with the append-only bitmaps gives the column store a
// deterministic physical layout.

#ifndef CODS_STORAGE_DICTIONARY_H_
#define CODS_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "storage/value.h"

namespace cods {

/// Value id type. 32 bits bounds a column at ~4.2B distinct values.
using Vid = uint32_t;

/// Sentinel for "no such value id" (dictionary translation misses).
inline constexpr Vid kNoVid = static_cast<Vid>(-1);

/// Dense dictionary of distinct values for one column.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the vid of `value`, inserting it if new.
  Vid GetOrInsert(const Value& value);

  /// Returns the vid of `value` if present.
  std::optional<Vid> Lookup(const Value& value) const;

  /// The value for a vid. `vid` must be < size().
  const Value& value(Vid vid) const { return values_[vid]; }

  /// Number of distinct values.
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Approximate heap footprint in bytes.
  uint64_t SizeBytes() const;

  /// All distinct values in vid order.
  const std::vector<Value>& values() const { return values_; }

 private:
  std::vector<Value> values_;
  std::unordered_map<Value, Vid, ValueHash> index_;
};

}  // namespace cods

#endif  // CODS_STORAGE_DICTIONARY_H_

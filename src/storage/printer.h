// Aligned text rendering of tables — the demo's "display table" button.

#ifndef CODS_STORAGE_PRINTER_H_
#define CODS_STORAGE_PRINTER_H_

#include <string>

#include "storage/table.h"

namespace cods {

/// Options for table formatting.
struct PrintOptions {
  uint64_t max_rows = 20;   // rows shown before eliding
  bool show_footer = true;  // "(n rows, m distinct ...)" footer
};

/// Renders a table as an aligned ASCII grid.
std::string FormatTable(const Table& table, const PrintOptions& options = {});

/// Renders schema + storage statistics (encoding, distinct counts,
/// compressed bytes per column).
std::string FormatTableStats(const Table& table);

}  // namespace cods

#endif  // CODS_STORAGE_PRINTER_H_

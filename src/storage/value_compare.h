// Value-level evaluation of the comparison vocabulary in
// common/compare.h. The CompareOp enum itself lives in common/ (so every
// layer can name an operator without pulling in storage); evaluating an
// operator against actual Values requires the Value total order, so the
// evaluation functions live here, one layer up.

#ifndef CODS_STORAGE_VALUE_COMPARE_H_
#define CODS_STORAGE_VALUE_COMPARE_H_

#include <string>

#include "common/compare.h"
#include "storage/value.h"

namespace cods {

/// Evaluates `lhs op rhs` with Value ordering. All six operators derive
/// from the total order (equality is order-equivalence), so int64 3 and
/// double 3.0 compare equal here even though Value::operator== (variant
/// equality) distinguishes them.
bool EvalCompare(const Value& lhs, CompareOp op, const Value& rhs);

/// Renders a literal so the statement parser reads back the same value:
/// strings are single-quoted with embedded quotes doubled (SQL style),
/// doubles print with shortest-round-trip precision and always carry a
/// point/exponent so they re-parse as doubles. Shared by Smo::ToString
/// and Expr::ToString so SMO and query rendering cannot diverge.
std::string FormatScriptLiteral(const Value& value);

}  // namespace cods

#endif  // CODS_STORAGE_VALUE_COMPARE_H_

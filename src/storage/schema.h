// Table schemas: named, typed columns plus an optional declared key
// (candidate key). The evolution operators use the key declarations to
// check lossless-join preconditions (§2.4) and to pick the key–foreign-key
// fast path in mergence (§2.5.1).

#ifndef CODS_STORAGE_SCHEMA_H_
#define CODS_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace cods {

/// Declaration of one column.
struct ColumnSpec {
  std::string name;
  DataType type = DataType::kString;
  bool sorted = false;  // hint: store run-length-encoded (§2.2)
};

/// An ordered list of column specs plus an optional key.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns,
                  std::vector<std::string> key = {});

  /// Validated factory: rejects duplicate column names and keys that
  /// reference unknown columns.
  static Result<Schema> Make(std::vector<ColumnSpec> columns,
                             std::vector<std::string> key = {});

  size_t num_columns() const { return columns_.size(); }
  const std::vector<ColumnSpec>& columns() const { return columns_; }
  const ColumnSpec& column(size_t i) const { return columns_[i]; }

  /// The declared key column names (may be empty = no declared key).
  const std::vector<std::string>& key() const { return key_; }
  bool has_key() const { return !key_.empty(); }

  /// Index of the column named `name`.
  Result<size_t> ColumnIndex(const std::string& name) const;
  bool HasColumn(const std::string& name) const;

  /// Resolves a column REFERENCE, which is looser than an exact name:
  /// an exact match wins; otherwise a plain reference `c` matches a
  /// uniquely-determined qualified column `t.c` (the naming scheme of
  /// cross-table query results). Ambiguous plain references error
  /// naming every candidate.
  Result<size_t> ResolveColumnRef(const std::string& ref) const;

  /// Indices of the declared key columns, in declaration order.
  Result<std::vector<size_t>> KeyIndices() const;

  /// True when `names` (as a set) equals the declared key (as a set).
  bool IsKey(const std::vector<std::string>& names) const;

  /// Schema with one column renamed. Fails if `from` is missing or `to`
  /// collides. Key references to `from` are updated.
  Result<Schema> RenameColumn(const std::string& from,
                              const std::string& to) const;

  /// Schema with a column appended. Fails on name collision.
  Result<Schema> AddColumn(const ColumnSpec& spec) const;

  /// Schema with a column removed. Fails if missing or if the column is
  /// part of the declared key.
  Result<Schema> DropColumn(const std::string& name) const;

  /// Column names in order.
  std::vector<std::string> ColumnNames() const;

  /// True when both schemas have the same column names and types in the
  /// same order (key declarations are ignored), i.e. they are
  /// union-compatible.
  bool SameLayout(const Schema& other) const;

  /// "R(Employee STRING, Skill STRING, key=(Employee, Skill))".
  std::string ToString() const;

 private:
  std::vector<ColumnSpec> columns_;
  std::vector<std::string> key_;
};

}  // namespace cods

#endif  // CODS_STORAGE_SCHEMA_H_

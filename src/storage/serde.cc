#include "storage/serde.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/env.h"

namespace cods {

namespace {
constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

// Guard rails against absurd counts from corrupted length prefixes; a
// length can never (meaningfully) exceed the remaining input, and these
// caps keep allocation failures from preceding the bounds check.
constexpr uint32_t kMaxReasonableCount = 1u << 30;
}  // namespace

void BinaryWriter::U8(uint8_t v) { buffer_.push_back(v); }

void BinaryWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void BinaryWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

Status BinaryReader::Need(size_t n) const {
  if (pos_ + n > size_) {
    return Status::Corruption("unexpected end of input at byte " +
                              std::to_string(pos_) + " (need " +
                              std::to_string(n) + ")");
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::U8() {
  CODS_RETURN_NOT_OK(Need(1));
  return data_[pos_++];
}

Result<uint32_t> BinaryReader::U32() {
  CODS_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::U64() {
  CODS_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> BinaryReader::I64() {
  CODS_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> BinaryReader::F64() {
  CODS_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::Str() {
  CODS_ASSIGN_OR_RETURN(uint32_t len, U32());
  CODS_RETURN_NOT_OK(Need(len));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

// ---- Bitmaps ---------------------------------------------------------------

void WriteBitmap(const WahBitmap& bitmap, BinaryWriter* out) {
  out->U64(bitmap.size());
  out->U64(bitmap.tail());
  out->U8(static_cast<uint8_t>(bitmap.tail_bits()));
  out->U32(static_cast<uint32_t>(bitmap.NumWords()));
  for (uint64_t w : bitmap.words()) out->U64(w);
}

Result<WahBitmap> ReadBitmap(BinaryReader* in) {
  CODS_ASSIGN_OR_RETURN(uint64_t num_bits, in->U64());
  CODS_ASSIGN_OR_RETURN(uint64_t tail, in->U64());
  CODS_ASSIGN_OR_RETURN(uint8_t tail_bits, in->U8());
  CODS_ASSIGN_OR_RETURN(uint32_t word_count, in->U32());
  if (word_count > kMaxReasonableCount) {
    return Status::Corruption("implausible WAH word count");
  }
  std::vector<uint64_t> words;
  words.reserve(word_count);
  for (uint32_t i = 0; i < word_count; ++i) {
    CODS_ASSIGN_OR_RETURN(uint64_t w, in->U64());
    words.push_back(w);
  }
  return WahBitmap::FromRawParts(std::move(words), tail, tail_bits,
                                 num_bits);
}

void WriteValueBitmap(const ValueBitmap& vb, BinaryWriter* out) {
  out->U8(static_cast<uint8_t>(vb.rep()));
  switch (vb.rep()) {
    case BitmapRep::kArray: {
      const std::vector<uint32_t>& positions = vb.array_positions();
      out->U32(static_cast<uint32_t>(positions.size()));
      for (uint32_t p : positions) out->U32(p);
      return;
    }
    case BitmapRep::kWah:
      WriteBitmap(vb.wah(), out);
      return;
    case BitmapRep::kBitset: {
      const std::vector<uint64_t>& words = vb.bitset_words();
      out->U32(static_cast<uint32_t>(words.size()));
      for (uint64_t w : words) out->U64(w);
      return;
    }
  }
  CODS_CHECK(false) << "unreachable bitmap representation";
}

Result<ValueBitmap> ReadValueBitmap(BinaryReader* in, uint64_t rows) {
  CODS_ASSIGN_OR_RETURN(uint8_t rep_byte, in->U8());
  if (rep_byte > static_cast<uint8_t>(BitmapRep::kBitset)) {
    return Status::Corruption("unknown bitmap representation tag " +
                              std::to_string(rep_byte));
  }
  BitmapRep rep = static_cast<BitmapRep>(rep_byte);
  switch (rep) {
    case BitmapRep::kArray: {
      CODS_ASSIGN_OR_RETURN(uint32_t count, in->U32());
      if (count > kMaxReasonableCount) {
        return Status::Corruption("implausible position count");
      }
      std::vector<uint32_t> positions;
      positions.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        CODS_ASSIGN_OR_RETURN(uint32_t p, in->U32());
        positions.push_back(p);
      }
      return ValueBitmap::FromRawParts(rep, rows, std::move(positions),
                                       WahBitmap(), {});
    }
    case BitmapRep::kWah: {
      CODS_ASSIGN_OR_RETURN(WahBitmap bm, ReadBitmap(in));
      if (bm.size() != rows) {
        return Status::Corruption("bitmap length does not match row count");
      }
      return ValueBitmap::FromRawParts(rep, rows, {}, std::move(bm), {});
    }
    case BitmapRep::kBitset: {
      CODS_ASSIGN_OR_RETURN(uint32_t word_count, in->U32());
      if (word_count > kMaxReasonableCount) {
        return Status::Corruption("implausible bitset word count");
      }
      std::vector<uint64_t> words;
      words.reserve(word_count);
      for (uint32_t i = 0; i < word_count; ++i) {
        CODS_ASSIGN_OR_RETURN(uint64_t w, in->U64());
        words.push_back(w);
      }
      return ValueBitmap::FromRawParts(rep, rows, {}, WahBitmap(),
                                       std::move(words));
    }
  }
  return Status::Corruption("unreachable bitmap representation");
}

// ---- Values and dictionaries ------------------------------------------------

void WriteValue(const Value& value, BinaryWriter* out) {
  if (value.is_int64()) {
    out->U8(kTagInt64);
    out->I64(value.int64());
  } else if (value.is_double()) {
    out->U8(kTagDouble);
    out->F64(value.dbl());
  } else if (value.is_string()) {
    out->U8(kTagString);
    out->Str(value.str());
  } else {
    // Nulls never reach storage (TableBuilder rejects them); encoding a
    // null would be an internal logic error.
    CODS_CHECK(false) << "cannot serialize a null value";
  }
}

Result<Value> ReadValue(BinaryReader* in) {
  CODS_ASSIGN_OR_RETURN(uint8_t tag, in->U8());
  switch (tag) {
    case kTagInt64: {
      CODS_ASSIGN_OR_RETURN(int64_t v, in->I64());
      return Value(v);
    }
    case kTagDouble: {
      CODS_ASSIGN_OR_RETURN(double v, in->F64());
      return Value(v);
    }
    case kTagString: {
      CODS_ASSIGN_OR_RETURN(std::string v, in->Str());
      return Value(std::move(v));
    }
    default:
      return Status::Corruption("unknown value tag " + std::to_string(tag));
  }
}

void WriteDictionary(const Dictionary& dict, BinaryWriter* out) {
  out->U32(static_cast<uint32_t>(dict.size()));
  for (const Value& v : dict.values()) WriteValue(v, out);
}

Result<Dictionary> ReadDictionary(BinaryReader* in) {
  CODS_ASSIGN_OR_RETURN(uint32_t count, in->U32());
  if (count > kMaxReasonableCount) {
    return Status::Corruption("implausible dictionary size");
  }
  Dictionary dict;
  for (uint32_t i = 0; i < count; ++i) {
    CODS_ASSIGN_OR_RETURN(Value v, ReadValue(in));
    Vid vid = dict.GetOrInsert(v);
    if (vid != i) {
      return Status::Corruption("duplicate value in serialized dictionary");
    }
  }
  return dict;
}

// ---- Columns -----------------------------------------------------------------

void WriteColumn(const Column& column, BinaryWriter* out, uint32_t version) {
  out->U8(static_cast<uint8_t>(column.type()));
  out->U8(static_cast<uint8_t>(column.encoding()));
  out->U64(column.rows());
  WriteDictionary(column.dict(), out);
  if (column.encoding() == ColumnEncoding::kWahBitmap) {
    out->U32(static_cast<uint32_t>(column.bitmaps().size()));
    if (version >= kCodsFileVersionV3) {
      // Each container serializes in its own representation, tagged.
      for (const ValueBitmap& vb : column.bitmaps()) {
        WriteValueBitmap(vb, out);
      }
    } else {
      // v1/v2 images are WAH-shaped: re-encode through the interchange
      // form so older readers stay compatible.
      for (const ValueBitmap& vb : column.bitmaps()) {
        WriteBitmap(vb.ToWah(), out);
      }
    }
  } else {
    const RleVector& rle = column.rle();
    out->U32(static_cast<uint32_t>(rle.NumRuns()));
    for (const RleVector::Run& run : rle.runs()) {
      out->U32(run.value);
      out->U64(run.length);
    }
  }
}

Result<std::shared_ptr<const Column>> ReadColumn(BinaryReader* in,
                                                 uint32_t version) {
  CODS_ASSIGN_OR_RETURN(uint8_t type_byte, in->U8());
  if (type_byte > static_cast<uint8_t>(DataType::kString)) {
    return Status::Corruption("unknown data type " +
                              std::to_string(type_byte));
  }
  DataType type = static_cast<DataType>(type_byte);
  CODS_ASSIGN_OR_RETURN(uint8_t enc_byte, in->U8());
  if (enc_byte > static_cast<uint8_t>(ColumnEncoding::kRle)) {
    return Status::Corruption("unknown column encoding " +
                              std::to_string(enc_byte));
  }
  ColumnEncoding encoding = static_cast<ColumnEncoding>(enc_byte);
  CODS_ASSIGN_OR_RETURN(uint64_t rows, in->U64());
  CODS_ASSIGN_OR_RETURN(Dictionary dict, ReadDictionary(in));
  if (encoding == ColumnEncoding::kWahBitmap) {
    CODS_ASSIGN_OR_RETURN(uint32_t count, in->U32());
    if (count != dict.size()) {
      return Status::Corruption("bitmap count does not match dictionary");
    }
    if (version >= kCodsFileVersionV3) {
      std::vector<ValueBitmap> bitmaps;
      bitmaps.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        CODS_ASSIGN_OR_RETURN(ValueBitmap vb, ReadValueBitmap(in, rows));
        bitmaps.push_back(std::move(vb));
      }
      return std::shared_ptr<const Column>(Column::FromValueBitmaps(
          type, std::move(dict), std::move(bitmaps), rows));
    }
    std::vector<WahBitmap> bitmaps;
    bitmaps.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      CODS_ASSIGN_OR_RETURN(WahBitmap bm, ReadBitmap(in));
      if (bm.size() != rows) {
        return Status::Corruption("bitmap length does not match row count");
      }
      bitmaps.push_back(std::move(bm));
    }
    return std::shared_ptr<const Column>(
        Column::FromBitmaps(type, std::move(dict), std::move(bitmaps),
                            rows));
  }
  CODS_ASSIGN_OR_RETURN(uint32_t run_count, in->U32());
  if (run_count > kMaxReasonableCount) {
    return Status::Corruption("implausible RLE run count");
  }
  std::vector<RleVector::Run> runs;
  runs.reserve(run_count);
  for (uint32_t i = 0; i < run_count; ++i) {
    CODS_ASSIGN_OR_RETURN(uint32_t vid, in->U32());
    CODS_ASSIGN_OR_RETURN(uint64_t length, in->U64());
    if (vid >= dict.size()) {
      return Status::Corruption("RLE vid outside dictionary");
    }
    if (length == 0) return Status::Corruption("zero-length RLE run");
    runs.push_back(RleVector::Run{vid, length});
  }
  RleVector rle = RleVector::FromRuns(runs);
  if (rle.size() != rows) {
    return Status::Corruption("RLE length does not match row count");
  }
  return std::shared_ptr<const Column>(
      Column::FromRle(type, std::move(dict), std::move(rle)));
}

// ---- Schemas and tables -------------------------------------------------------

void WriteSchema(const Schema& schema, BinaryWriter* out) {
  out->U32(static_cast<uint32_t>(schema.key().size()));
  for (const std::string& k : schema.key()) out->Str(k);
  out->U32(static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnSpec& spec : schema.columns()) {
    out->Str(spec.name);
    out->U8(static_cast<uint8_t>(spec.type));
    out->U8(spec.sorted ? 1 : 0);
  }
}

Result<Schema> ReadSchema(BinaryReader* in) {
  CODS_ASSIGN_OR_RETURN(uint32_t key_count, in->U32());
  if (key_count > kMaxReasonableCount) {
    return Status::Corruption("implausible key count");
  }
  std::vector<std::string> key;
  for (uint32_t i = 0; i < key_count; ++i) {
    CODS_ASSIGN_OR_RETURN(std::string k, in->Str());
    key.push_back(std::move(k));
  }
  CODS_ASSIGN_OR_RETURN(uint32_t col_count, in->U32());
  if (col_count > kMaxReasonableCount) {
    return Status::Corruption("implausible column count");
  }
  std::vector<ColumnSpec> specs;
  for (uint32_t i = 0; i < col_count; ++i) {
    ColumnSpec spec;
    CODS_ASSIGN_OR_RETURN(spec.name, in->Str());
    CODS_ASSIGN_OR_RETURN(uint8_t type_byte, in->U8());
    if (type_byte > static_cast<uint8_t>(DataType::kString)) {
      return Status::Corruption("unknown column type in schema");
    }
    spec.type = static_cast<DataType>(type_byte);
    CODS_ASSIGN_OR_RETURN(uint8_t sorted, in->U8());
    if (sorted > 1) return Status::Corruption("bad sorted flag");
    spec.sorted = sorted == 1;
    specs.push_back(std::move(spec));
  }
  // Schema::Make re-validates name uniqueness and key references.
  return Schema::Make(std::move(specs), std::move(key));
}

void WriteTable(const Table& table, BinaryWriter* out, uint32_t version) {
  out->Str(table.name());
  out->U64(table.rows());
  WriteSchema(table.schema(), out);
  for (size_t i = 0; i < table.num_columns(); ++i) {
    WriteColumn(*table.column(i), out, version);
  }
}

Result<std::shared_ptr<const Table>> ReadTable(BinaryReader* in,
                                               uint32_t version) {
  CODS_ASSIGN_OR_RETURN(std::string name, in->Str());
  CODS_ASSIGN_OR_RETURN(uint64_t rows, in->U64());
  CODS_ASSIGN_OR_RETURN(Schema schema, ReadSchema(in));
  std::vector<std::shared_ptr<const Column>> columns;
  columns.reserve(schema.num_columns());
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    CODS_ASSIGN_OR_RETURN(auto col, ReadColumn(in, version));
    columns.push_back(std::move(col));
  }
  CODS_ASSIGN_OR_RETURN(
      auto table,
      Table::Make(std::move(name), std::move(schema), std::move(columns),
                  rows));
  // Structural re-verification: the file may be syntactically valid but
  // semantically corrupt (e.g. overlapping bitmaps).
  CODS_RETURN_NOT_OK(table->ValidateInvariants().WithContext(
      "loading table '" + table->name() + "'"));
  return table;
}

// ---- Whole database -------------------------------------------------------------

namespace {

std::vector<uint8_t> SerializeCatalogBody(const Catalog& catalog,
                                          uint32_t version) {
  BinaryWriter out;
  out.U32(kCodsFileMagic);
  out.U32(version);
  std::vector<std::string> names = catalog.TableNames();
  out.U32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    WriteTable(*catalog.GetTable(name).ValueOrDie(), &out, version);
  }
  return out.TakeBuffer();
}

// Appends the wal_lsn + masked-CRC32C footer shared by v2 and v3 images.
std::vector<uint8_t> AppendFooter(std::vector<uint8_t> image,
                                  uint64_t wal_lsn) {
  BinaryWriter footer;
  footer.U64(wal_lsn);
  image.insert(image.end(), footer.buffer().begin(), footer.buffer().end());
  // The CRC covers everything before it, LSN included.
  BinaryWriter crc;
  crc.U32(crc32c::Mask(crc32c::Value(image.data(), image.size())));
  image.insert(image.end(), crc.buffer().begin(), crc.buffer().end());
  return image;
}

}  // namespace

std::vector<uint8_t> SerializeCatalog(const Catalog& catalog) {
  return SerializeCatalogBody(catalog, kCodsFileVersion);
}

std::vector<uint8_t> SerializeCatalogV2(const Catalog& catalog,
                                        uint64_t wal_lsn) {
  return AppendFooter(SerializeCatalogBody(catalog, kCodsFileVersionV2),
                      wal_lsn);
}

std::vector<uint8_t> SerializeCatalogV3(const Catalog& catalog,
                                        uint64_t wal_lsn) {
  return AppendFooter(SerializeCatalogBody(catalog, kCodsFileVersionV3),
                      wal_lsn);
}

Result<Catalog> DeserializeCatalog(const std::vector<uint8_t>& image,
                                   uint64_t* wal_lsn) {
  if (wal_lsn != nullptr) *wal_lsn = 0;
  BinaryReader header(image.data(), image.size());
  CODS_ASSIGN_OR_RETURN(uint32_t magic, header.U32());
  if (magic != kCodsFileMagic) {
    return Status::Corruption("not a CODS database image (bad magic)");
  }
  CODS_ASSIGN_OR_RETURN(uint32_t version, header.U32());
  size_t body_size = image.size();
  if (version == kCodsFileVersionV2 || version == kCodsFileVersionV3) {
    // Verify the whole-image checksum before trusting any length field.
    if (image.size() < 8 + kCodsFooterSize) {
      return Status::Corruption("image too short for its footer");
    }
    BinaryReader footer(image.data() + image.size() - kCodsFooterSize,
                        kCodsFooterSize);
    uint64_t lsn = footer.U64().ValueOrDie();
    uint32_t stored_crc = footer.U32().ValueOrDie();
    uint32_t actual = crc32c::Value(image.data(), image.size() - 4);
    if (crc32c::Mask(actual) != stored_crc) {
      return Status::Corruption("database image checksum mismatch");
    }
    if (wal_lsn != nullptr) *wal_lsn = lsn;
    body_size = image.size() - kCodsFooterSize;
  } else if (version != kCodsFileVersion) {
    return Status::Corruption("unsupported format version " +
                              std::to_string(version));
  }
  BinaryReader in(image.data(), body_size);
  in.U32().IgnoreError();  // magic: validated above, re-consumed here
  in.U32().IgnoreError();  // version: validated above, re-consumed here
  CODS_ASSIGN_OR_RETURN(uint32_t table_count, in.U32());
  if (table_count > kMaxReasonableCount) {
    return Status::Corruption("implausible table count");
  }
  Catalog catalog;
  for (uint32_t i = 0; i < table_count; ++i) {
    CODS_ASSIGN_OR_RETURN(auto table, ReadTable(&in, version));
    CODS_RETURN_NOT_OK(catalog.AddTable(std::move(table)));
  }
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes after the last table");
  }
  return catalog;
}

Status SaveCatalog(const Catalog& catalog, const std::string& path) {
  // Checkpoint-style crash safety: the image lands under a temp name, is
  // fsync'd, and only then atomically replaces any previous good image.
  return WriteFileAtomic(Env::Default(), path,
                         SerializeCatalogV3(catalog, /*wal_lsn=*/0));
}

Result<Catalog> LoadCatalog(const std::string& path) {
  CODS_ASSIGN_OR_RETURN(std::vector<uint8_t> image,
                        Env::Default()->ReadFile(path));
  return DeserializeCatalog(image);
}

}  // namespace cods

#include "plan/script_planner.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace cods {

namespace {

// Both vectors sorted (Smo::ReadTables/WriteTables guarantee it).
bool Intersects(const std::vector<std::string>& a,
                const std::vector<std::string>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

// j conflicts with i iff one writes what the other reads or writes.
bool Conflicts(const PlannedTask& a, const PlannedTask& b) {
  return Intersects(a.writes, b.writes) || Intersects(a.writes, b.reads) ||
         Intersects(a.reads, b.writes);
}

}  // namespace

ScriptPlan PlanScript(const std::vector<Smo>& script) {
  ScriptPlan plan;
  const size_t n = script.size();
  plan.tasks.resize(n);
  for (size_t i = 0; i < n; ++i) {
    plan.tasks[i].reads = script[i].ReadTables();
    plan.tasks[i].writes = script[i].WriteTables();
  }

  // reach[i][j]: task j is a (transitive) predecessor of task i. Used
  // for on-the-fly transitive reduction: scanning candidates from i-1
  // downward, a conflicting j already covered by a chosen edge's
  // ancestry needs no direct edge.
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t jj = i; jj > 0; --jj) {
      const size_t j = jj - 1;
      if (reach[i][j]) continue;
      if (!Conflicts(plan.tasks[j], plan.tasks[i])) continue;
      plan.tasks[i].deps.push_back(j);
      plan.num_edges += 1;
      reach[i][j] = true;
      for (size_t k = 0; k < j; ++k) {
        if (reach[j][k]) reach[i][k] = true;
      }
    }
    // deps were collected in descending order; keep them ascending.
    std::reverse(plan.tasks[i].deps.begin(), plan.tasks[i].deps.end());
  }

  // Level sets (edges only point backward in script order, so a single
  // forward pass computes longest chains).
  std::vector<size_t> level(n, 0);
  size_t max_level = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t d : plan.tasks[i].deps) {
      if (level[d] + 1 > level[i]) level[i] = level[d] + 1;
    }
    if (level[i] > max_level) max_level = level[i];
  }
  plan.stages.assign(n == 0 ? 0 : max_level + 1, {});
  for (size_t i = 0; i < n; ++i) plan.stages[level[i]].push_back(i);
  plan.critical_path = plan.stages.size();
  return plan;
}

std::string FormatScriptPlan(const std::vector<Smo>& script,
                             const ScriptPlan& plan) {
  std::ostringstream out;
  out << "script plan: " << plan.tasks.size() << " task"
      << (plan.tasks.size() == 1 ? "" : "s") << ", " << plan.num_edges
      << " edge" << (plan.num_edges == 1 ? "" : "s") << ", "
      << plan.stages.size() << " stage"
      << (plan.stages.size() == 1 ? "" : "s") << " (critical path "
      << plan.critical_path << " of " << plan.tasks.size() << ")\n";
  for (size_t s = 0; s < plan.stages.size(); ++s) {
    out << "stage " << s << ":\n";
    for (size_t i : plan.stages[s]) {
      const PlannedTask& task = plan.tasks[i];
      out << "  [" << i << "] " << script[i].ToString() << "\n";
      out << "      reads: "
          << (task.reads.empty() ? "-" : Join(task.reads, ", "))
          << "  writes: "
          << (task.writes.empty() ? "-" : Join(task.writes, ", "));
      if (!task.deps.empty()) {
        std::vector<std::string> deps;
        deps.reserve(task.deps.size());
        for (size_t d : task.deps) deps.push_back(std::to_string(d));
        out << "  after: " << Join(deps, ", ");
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace cods

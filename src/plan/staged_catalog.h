// Staged catalog state for planned script execution. Tasks of a script
// plan run concurrently, so their catalog effects must not touch the
// real Catalog until the whole script's fate is known; instead each
// task mutates a shared, thread-safe overlay (so downstream tasks see
// upstream outputs) while privately recording an effect log. After the
// task graph finishes, the engine replays the logs onto the real
// catalog in SCRIPT order — committing exactly the prefix of operators
// that serial ApplyAll would have committed, so the final catalog is
// bit-identical to serial execution in both the success and the
// first-failure case.
//
// Error-message parity: every overlay operation reproduces Catalog's
// semantics and message text exactly (KeyError "no table named '...'",
// AlreadyExists "table '...' already exists"), so a script that fails
// planned fails with the same Status it would have failed with serially.

#ifndef CODS_PLAN_STAGED_CATALOG_H_
#define CODS_PLAN_STAGED_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/catalog.h"

namespace cods {

/// One recorded catalog mutation, replayable onto a real Catalog.
struct CatalogEffect {
  enum class Kind { kAdd, kPut, kDrop, kRename };
  Kind kind = Kind::kPut;
  std::shared_ptr<const Table> table;  // kAdd / kPut payload
  std::string name;                    // kDrop victim; kRename source
  std::string name2;                   // kRename target
};

/// Replays one effect onto `store` with the matching TableStore call.
Status ApplyEffect(const CatalogEffect& effect, TableStore* store);

/// A mutable overlay over an immutable base store (a Catalog, or a
/// pinned CatalogRoot in snapshot-commit mode). Thread-safe: the
/// script planner orders conflicting tasks, but independent tasks touch
/// the shared name map concurrently. Obtain per-task TableStore handles
/// with MakeView; each view appends the mutations it performs to its
/// own effect log.
class StagedCatalog {
 public:
  explicit StagedCatalog(const TableStore* base);

  /// TableStore handle bound to one task's effect log (not owned). The
  /// view must not outlive the StagedCatalog or the log.
  class View : public TableStore {
   public:
    View(StagedCatalog* staged, std::vector<CatalogEffect>* log)
        : staged_(staged), log_(log) {}

    Status AddTable(std::shared_ptr<const Table> table) override;
    void PutTable(std::shared_ptr<const Table> table) override;
    Result<std::shared_ptr<const Table>> GetTable(
        const std::string& name) const override;
    bool HasTable(const std::string& name) const override;
    Status DropTable(const std::string& name) override;
    Status RenameTable(const std::string& from,
                       const std::string& to) override;

   private:
    StagedCatalog* staged_;
    std::vector<CatalogEffect>* log_;
  };

  View MakeView(std::vector<CatalogEffect>* log) { return View(this, log); }

 private:
  // All under mu_. An overlay entry shadows the base: a null table means
  // "dropped"; absence means "base is authoritative".
  Result<std::shared_ptr<const Table>> Get(const std::string& name) const;
  bool Has(const std::string& name) const;

  const TableStore* base_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const Table>> overlay_;
};

}  // namespace cods

#endif  // CODS_PLAN_STAGED_CATALOG_H_

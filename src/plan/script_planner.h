// The SMO script planner: turns a parsed evolution script into a
// dependency DAG over table read/write sets, so independent operators
// can overlap on the exec-layer TaskGraph while the final catalog stays
// bit-identical to serial ApplyAll (see plan/staged_catalog.h for the
// commit protocol and evolution/engine.h ApplyAllPlanned for the
// executor).
//
// Conflict model: operator j must precede operator i (j < i in script
// order) iff one of them writes a table the other reads or writes.
// Read/read sharing is free — tables are immutable shared_ptrs. The
// planner adds only non-transitive edges (if j -> k -> i exists, the
// direct j -> i edge is omitted), so the DAG is the transitive
// reduction of the conflict relation restricted to script order.

#ifndef CODS_PLAN_SCRIPT_PLANNER_H_
#define CODS_PLAN_SCRIPT_PLANNER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "evolution/smo.h"

namespace cods {

/// One script operator with its conflict analysis.
struct PlannedTask {
  std::vector<std::string> reads;   // tables whose data the SMO consumes
  std::vector<std::string> writes;  // tables the SMO creates/replaces/drops
  std::vector<size_t> deps;         // script indices that must run first
};

/// The dependency DAG of a script. tasks[i] corresponds to script[i].
struct ScriptPlan {
  std::vector<PlannedTask> tasks;
  size_t num_edges = 0;
  /// Level sets: stage s holds the tasks whose longest dependency chain
  /// has s predecessors — everything within one stage may overlap.
  std::vector<std::vector<size_t>> stages;
  /// Length of the longest dependency chain (== stages.size()).
  size_t critical_path = 0;
};

/// Builds the plan. Pure analysis — never fails, touches no catalog.
ScriptPlan PlanScript(const std::vector<Smo>& script);

/// EXPLAIN-style rendering: one line per operator with its read/write
/// sets and dependencies, grouped into parallel stages.
std::string FormatScriptPlan(const std::vector<Smo>& script,
                             const ScriptPlan& plan);

}  // namespace cods

#endif  // CODS_PLAN_SCRIPT_PLANNER_H_

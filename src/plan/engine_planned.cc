// The planned execution core of EvolutionEngine.
//
// EvolutionEngine (evolution/engine.h) declares RunPlanned and
// StageScript but evolution sits below plan/ in the architecture, so the
// definitions — which need the script planner and the staged-catalog
// overlay — live here, in the layer that owns those types. They link
// into the same engine; only the include graph is layered.

#include "evolution/engine.h"
#include "evolution/observer.h"
#include "plan/script_planner.h"
#include "plan/staged_catalog.h"

namespace cods {

Status EvolutionEngine::StageScript(
    StagedCatalog* staged, const std::vector<Smo>& script, bool planned,
    TaskGraphStats* stats, std::vector<std::vector<CatalogEffect>>* effects,
    size_t* applied) {
  const size_t n = script.size();
  *applied = 0;

  if (!planned) {
    // Serial staging: one operator at a time against the overlay, same
    // order and context strings as RunSerial.
    for (size_t i = 0; i < n; ++i) {
      StagedCatalog::View view = staged->MakeView(&(*effects)[i]);
      Status st = ApplyTo(view, script[i], observer_)
                      .WithContext(script[i].ToString());
      if (!st.ok()) return st;
      ++*applied;
    }
    return Status::OK();
  }

  ScriptPlan plan = PlanScript(script);
  std::vector<StagedCatalog::View> views;
  views.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    views.push_back(staged->MakeView(&(*effects)[i]));
  }

  // Observers written for serial execution must not see concurrent
  // callbacks from overlapping operators.
  SerializedObserver serialized(observer_);
  EvolutionObserver* observer = observer_ != nullptr ? &serialized : nullptr;

  TaskGraph graph;
  for (size_t i = 0; i < n; ++i) {
    graph.AddTask(
        [this, &views, &script, observer, i]() -> Status {
          // Same context string as the serial ApplyAll loop attaches.
          return ApplyTo(views[i], script[i], observer)
              .WithContext(script[i].ToString());
        },
        SmoKindToString(script[i].kind));
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t dep : plan.tasks[i].deps) {
      graph.AddDependency(static_cast<int>(i), static_cast<int>(dep));
    }
  }

  Status run_status = graph.Run(exec_ctx_);
  if (stats != nullptr) *stats = graph.stats();

  // Planner graphs are acyclic by construction; a non-OK Run with every
  // task status OK means nothing executed (defensive) — commit nothing.
  if (!run_status.ok()) {
    bool any_task_failed = false;
    for (size_t i = 0; i < n && !any_task_failed; ++i) {
      any_task_failed = !graph.task_status(static_cast<int>(i)).ok();
    }
    if (!any_task_failed) return run_status;
  }

  // The commit prefix stops at the first failed SCRIPT position —
  // exactly the operators serial ApplyAll would have applied.
  for (size_t i = 0; i < n; ++i) {
    const Status& st = graph.task_status(static_cast<int>(i));
    if (!st.ok()) return st;
    ++*applied;
  }
  return Status::OK();
}

Status EvolutionEngine::RunPlanned(const std::vector<Smo>& script,
                                   TaskGraphStats* stats, size_t* applied) {
  if (stats != nullptr) *stats = {};
  if (script.empty()) return Status::OK();
  StagedCatalog staged(catalog_);
  std::vector<std::vector<CatalogEffect>> effects(script.size());
  size_t prefix = 0;
  Status run =
      StageScript(&staged, script, /*planned=*/true, stats, &effects, &prefix);
  // Commit the staged effects of the applied prefix in script order.
  for (size_t i = 0; i < prefix; ++i) {
    for (const CatalogEffect& effect : effects[i]) {
      CODS_RETURN_NOT_OK(ApplyEffect(effect, catalog_));
    }
    if (applied != nullptr) ++*applied;
  }
  return run;
}

}  // namespace cods

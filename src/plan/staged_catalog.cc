#include "plan/staged_catalog.h"

#include "common/logging.h"

namespace cods {

Status ApplyEffect(const CatalogEffect& effect, TableStore* store) {
  switch (effect.kind) {
    case CatalogEffect::Kind::kAdd:
      return store->AddTable(effect.table);
    case CatalogEffect::Kind::kPut:
      store->PutTable(effect.table);
      return Status::OK();
    case CatalogEffect::Kind::kDrop:
      return store->DropTable(effect.name);
    case CatalogEffect::Kind::kRename:
      return store->RenameTable(effect.name, effect.name2);
  }
  return Status::NotImplemented("unknown catalog effect");
}

StagedCatalog::StagedCatalog(const TableStore* base) : base_(base) {
  CODS_CHECK(base_ != nullptr);
}

// Both helpers require mu_ to be held by the caller.

Result<std::shared_ptr<const Table>> StagedCatalog::Get(
    const std::string& name) const {
  auto it = overlay_.find(name);
  if (it != overlay_.end()) {
    if (it->second == nullptr) {
      return Status::KeyError("no table named '" + name + "'");
    }
    return it->second;
  }
  return base_->GetTable(name);
}

bool StagedCatalog::Has(const std::string& name) const {
  auto it = overlay_.find(name);
  if (it != overlay_.end()) return it->second != nullptr;
  return base_->HasTable(name);
}

Status StagedCatalog::View::AddTable(std::shared_ptr<const Table> table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  std::lock_guard<std::mutex> lock(staged_->mu_);
  const std::string& name = table->name();
  if (staged_->Has(name)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  staged_->overlay_[name] = table;
  log_->push_back({CatalogEffect::Kind::kAdd, std::move(table), {}, {}});
  return Status::OK();
}

void StagedCatalog::View::PutTable(std::shared_ptr<const Table> table) {
  CODS_CHECK(table != nullptr);
  std::lock_guard<std::mutex> lock(staged_->mu_);
  staged_->overlay_[table->name()] = table;
  log_->push_back({CatalogEffect::Kind::kPut, std::move(table), {}, {}});
}

Result<std::shared_ptr<const Table>> StagedCatalog::View::GetTable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(staged_->mu_);
  return staged_->Get(name);
}

bool StagedCatalog::View::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(staged_->mu_);
  return staged_->Has(name);
}

Status StagedCatalog::View::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(staged_->mu_);
  if (!staged_->Has(name)) {
    return Status::KeyError("no table named '" + name + "'");
  }
  staged_->overlay_[name] = nullptr;
  log_->push_back({CatalogEffect::Kind::kDrop, nullptr, name, {}});
  return Status::OK();
}

Status StagedCatalog::View::RenameTable(const std::string& from,
                                        const std::string& to) {
  std::lock_guard<std::mutex> lock(staged_->mu_);
  auto src = staged_->Get(from);
  if (!src.ok()) return src.status();
  if (from == to) return Status::OK();  // Catalog's no-op, no effect logged
  if (staged_->Has(to)) {
    return Status::AlreadyExists("table '" + to + "' already exists");
  }
  staged_->overlay_[from] = nullptr;
  staged_->overlay_[to] = src.ValueOrDie()->WithName(to);
  log_->push_back({CatalogEffect::Kind::kRename, nullptr, from, to});
  return Status::OK();
}

}  // namespace cods

#include "smo/parser.h"

#include <cctype>

#include "common/string_util.h"

namespace cods {

namespace {

enum class TokenKind {
  kIdent,    // identifiers and keywords
  kNumber,   // integer or decimal literal
  kString,   // quoted string literal
  kSymbol,   // punctuation and comparison operators
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  // Byte offset of the token's first character in the SOURCE text. The
  // single source of truth for positions: token text is DECODED (a
  // doubled quote collapses to one character), so counting token
  // characters would drift from the source — line/column are derived
  // from this offset at report time instead.
  size_t offset = 0;
};

// "line L, column C: " (1-based) of the byte at `offset`, derived by
// scanning the source prefix — only ever paid on the error path.
std::string FormatPosition(const std::string& text, size_t offset) {
  size_t line = 1, column = 1;
  for (size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return "line " + std::to_string(line) + ", column " +
         std::to_string(column) + ": ";
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      Token tok;
      tok.offset = pos_;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tok.kind = TokenKind::kIdent;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          tok.text += Advance();
        }
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '+') {
        tok.kind = TokenKind::kNumber;
        tok.text += Advance();
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' ||
                // Exponent sign: only directly after e/E ("1e+25").
                ((text_[pos_] == '+' || text_[pos_] == '-') &&
                 (tok.text.back() == 'e' || tok.text.back() == 'E')))) {
          tok.text += Advance();
        }
      } else if (c == '\'' || c == '"') {
        tok.kind = TokenKind::kString;
        char quote = Advance();
        for (;;) {
          while (pos_ < text_.size() && text_[pos_] != quote) {
            tok.text += Advance();
          }
          if (pos_ >= text_.size()) {
            return Status::InvalidArgument(FormatPosition(text_, tok.offset) +
                                           "unterminated string literal");
          }
          Advance();  // closing quote...
          if (pos_ < text_.size() && text_[pos_] == quote) {
            tok.text += Advance();  // ...or a doubled (escaped) one
            continue;
          }
          break;
        }
      } else if (c == '<' || c == '>' || c == '!') {
        tok.kind = TokenKind::kSymbol;
        tok.text += Advance();
        if (pos_ < text_.size() && text_[pos_] == '=') {
          tok.text += Advance();
        }
        if (tok.text == "!") {
          return Status::InvalidArgument(FormatPosition(text_, tok.offset) +
                                         "stray '!'");
        }
      } else if (c == '(' || c == ')' || c == ',' || c == ';' || c == '=' ||
                 c == '*' || c == '.') {
        tok.kind = TokenKind::kSymbol;
        tok.text += Advance();
      } else {
        return Status::InvalidArgument(FormatPosition(text_, pos_) +
                                       std::string("unexpected character '") +
                                       c + "'");
      }
      out.push_back(std::move(tok));
    }
    Token end;
    end.offset = pos_;
    out.push_back(end);
    return out;
  }

 private:
  char Advance() { return text_[pos_++]; }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '-') {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  // `text` is the source the tokens were lexed from (positions in error
  // messages derive from token byte offsets into it); not owned.
  Parser(const std::string& text, std::vector<Token> tokens)
      : text_(text), tokens_(std::move(tokens)) {}

  // Parses the whole script. `where` (if given) receives one source-
  // position prefix ("line L, column C: ") per statement, so callers
  // that restrict the statement mix (ParseSmoScript) can still report
  // where the offending statement started.
  Result<std::vector<Statement>> ParseScript(
      std::vector<std::string>* where = nullptr) {
    std::vector<Statement> out;
    while (!AtEnd()) {
      if (AcceptSymbol(";")) continue;
      std::string position = FormatPosition(text_, Peek().offset);
      CODS_ASSIGN_OR_RETURN(Statement stmt, ParseOneStatement());
      out.push_back(std::move(stmt));
      if (where != nullptr) where->push_back(std::move(position));
    }
    return out;
  }

  Result<Statement> ParseOneStatement() {
    if (AcceptKeyword("SELECT")) {
      CODS_ASSIGN_OR_RETURN(QueryRequest query, ParseSelect());
      return Statement::FromQuery(std::move(query));
    }
    CODS_ASSIGN_OR_RETURN(Smo smo, ParseSmo());
    return Statement::FromSmo(std::move(smo));
  }

  Result<Smo> ParseSmo() {
    if (AcceptKeyword("CREATE")) {
      CODS_RETURN_NOT_OK(ExpectKeyword("TABLE"));
      return ParseCreateTable();
    }
    if (AcceptKeyword("DROP")) {
      if (AcceptKeyword("TABLE")) {
        CODS_ASSIGN_OR_RETURN(std::string name, ExpectIdent("table name"));
        return Smo::DropTable(name);
      }
      CODS_RETURN_NOT_OK(ExpectKeyword("COLUMN"));
      CODS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      CODS_RETURN_NOT_OK(ExpectKeyword("FROM"));
      CODS_ASSIGN_OR_RETURN(std::string table, ExpectIdent("table name"));
      return Smo::DropColumn(table, col);
    }
    if (AcceptKeyword("RENAME")) {
      if (AcceptKeyword("TABLE")) {
        CODS_ASSIGN_OR_RETURN(std::string from, ExpectIdent("table name"));
        CODS_RETURN_NOT_OK(ExpectKeyword("TO"));
        CODS_ASSIGN_OR_RETURN(std::string to, ExpectIdent("table name"));
        return Smo::RenameTable(from, to);
      }
      CODS_RETURN_NOT_OK(ExpectKeyword("COLUMN"));
      CODS_ASSIGN_OR_RETURN(std::string from, ExpectIdent("column name"));
      CODS_RETURN_NOT_OK(ExpectKeyword("TO"));
      CODS_ASSIGN_OR_RETURN(std::string to, ExpectIdent("column name"));
      CODS_RETURN_NOT_OK(ExpectKeyword("IN"));
      CODS_ASSIGN_OR_RETURN(std::string table, ExpectIdent("table name"));
      return Smo::RenameColumn(table, from, to);
    }
    if (AcceptKeyword("COPY")) {
      CODS_RETURN_NOT_OK(ExpectKeyword("TABLE"));
      CODS_ASSIGN_OR_RETURN(std::string from, ExpectIdent("table name"));
      CODS_RETURN_NOT_OK(ExpectKeyword("TO"));
      CODS_ASSIGN_OR_RETURN(std::string to, ExpectIdent("table name"));
      return Smo::CopyTable(from, to);
    }
    if (AcceptKeyword("UNION")) {
      CODS_RETURN_NOT_OK(ExpectKeyword("TABLES"));
      CODS_ASSIGN_OR_RETURN(std::string a, ExpectIdent("table name"));
      CODS_RETURN_NOT_OK(ExpectSymbol(","));
      CODS_ASSIGN_OR_RETURN(std::string b, ExpectIdent("table name"));
      CODS_RETURN_NOT_OK(ExpectKeyword("INTO"));
      CODS_ASSIGN_OR_RETURN(std::string out, ExpectIdent("table name"));
      return Smo::UnionTables(a, b, out);
    }
    if (AcceptKeyword("PARTITION")) {
      CODS_RETURN_NOT_OK(ExpectKeyword("TABLE"));
      CODS_ASSIGN_OR_RETURN(std::string table, ExpectIdent("table name"));
      CODS_RETURN_NOT_OK(ExpectKeyword("INTO"));
      CODS_ASSIGN_OR_RETURN(std::string out1, ExpectIdent("table name"));
      CODS_RETURN_NOT_OK(ExpectSymbol(","));
      CODS_ASSIGN_OR_RETURN(std::string out2, ExpectIdent("table name"));
      CODS_RETURN_NOT_OK(ExpectKeyword("WHERE"));
      CODS_ASSIGN_OR_RETURN(std::string column, ExpectIdent("column name"));
      CODS_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp());
      CODS_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
      return Smo::PartitionTable(table, out1, out2, column, op, literal);
    }
    if (AcceptKeyword("DECOMPOSE")) {
      CODS_RETURN_NOT_OK(ExpectKeyword("TABLE"));
      CODS_ASSIGN_OR_RETURN(std::string table, ExpectIdent("table name"));
      CODS_RETURN_NOT_OK(ExpectKeyword("INTO"));
      CODS_ASSIGN_OR_RETURN(OutSpec s, ParseOutSpec());
      CODS_RETURN_NOT_OK(ExpectSymbol(","));
      CODS_ASSIGN_OR_RETURN(OutSpec t, ParseOutSpec());
      return Smo::DecomposeTable(table, s.name, s.columns, s.key, t.name,
                                 t.columns, t.key);
    }
    if (AcceptKeyword("MERGE")) {
      CODS_RETURN_NOT_OK(ExpectKeyword("TABLES"));
      CODS_ASSIGN_OR_RETURN(std::string s, ExpectIdent("table name"));
      CODS_RETURN_NOT_OK(ExpectSymbol(","));
      CODS_ASSIGN_OR_RETURN(std::string t, ExpectIdent("table name"));
      CODS_RETURN_NOT_OK(ExpectKeyword("INTO"));
      CODS_ASSIGN_OR_RETURN(std::string out, ExpectIdent("table name"));
      CODS_RETURN_NOT_OK(ExpectKeyword("ON"));
      CODS_ASSIGN_OR_RETURN(std::vector<std::string> join, ParseNameList());
      std::vector<std::string> key;
      if (AcceptKeyword("KEY")) {
        CODS_ASSIGN_OR_RETURN(key, ParseNameList());
      }
      return Smo::MergeTables(s, t, out, join, key);
    }
    if (AcceptKeyword("ADD")) {
      CODS_RETURN_NOT_OK(ExpectKeyword("COLUMN"));
      CODS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      CODS_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent("type"));
      CODS_ASSIGN_OR_RETURN(DataType type, DataTypeFromString(type_name));
      CODS_RETURN_NOT_OK(ExpectKeyword("TO"));
      CODS_ASSIGN_OR_RETURN(std::string table, ExpectIdent("table name"));
      Value def;
      if (AcceptKeyword("DEFAULT")) {
        CODS_ASSIGN_OR_RETURN(def, ParseLiteralAs(type));
      } else {
        // Type-appropriate zero value.
        switch (type) {
          case DataType::kInt64:
            def = Value(int64_t{0});
            break;
          case DataType::kDouble:
            def = Value(0.0);
            break;
          case DataType::kString:
            def = Value(std::string());
            break;
        }
      }
      return Smo::AddColumn(table, ColumnSpec{col, type, false}, def);
    }
    return Error("expected a statement (SELECT or a schema modification "
                 "operator)");
  }

 private:
  struct OutSpec {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::string> key;
  };

  // ---- SELECT statements ---------------------------------------------------
  //
  //   SELECT <*|items> FROM t [JOIN u ON x = y] [WHERE expr]
  //     [GROUP BY g] [ORDER BY c [ASC|DESC]] [LIMIT n]
  //
  // where an item is a (possibly qualified) column reference or an
  // aggregate SUM/COUNT/MIN/MAX/AVG(col) / COUNT(*). A lone COUNT(*)
  // without GROUP BY is the count verb; any aggregate list under a
  // GROUP BY is the group-by verb; plain columns are the select verb.

  // True iff the next tokens are `<agg-name> (` — an identifier alone
  // may still be a column named "sum".
  bool PeekAggregate(AggregateSpec::Kind* kind) const {
    if (Peek().kind != TokenKind::kIdent) return false;
    const Token& next = tokens_[pos_ + 1];
    if (next.kind != TokenKind::kSymbol || next.text != "(") return false;
    const std::string& name = Peek().text;
    if (EqualsIgnoreCase(name, "SUM")) {
      *kind = AggregateSpec::Kind::kSum;
    } else if (EqualsIgnoreCase(name, "COUNT")) {
      *kind = AggregateSpec::Kind::kCount;
    } else if (EqualsIgnoreCase(name, "MIN")) {
      *kind = AggregateSpec::Kind::kMin;
    } else if (EqualsIgnoreCase(name, "MAX")) {
      *kind = AggregateSpec::Kind::kMax;
    } else if (EqualsIgnoreCase(name, "AVG")) {
      *kind = AggregateSpec::Kind::kAvg;
    } else {
      return false;
    }
    return true;
  }

  Result<QueryRequest> ParseSelect() {
    QueryRequest req;
    std::vector<std::string> bare;           // plain column references
    std::vector<AggregateSpec> aggs;
    if (!AcceptSymbol("*")) {
      while (true) {
        const Token& item_start = Peek();
        AggregateSpec::Kind kind;
        if (PeekAggregate(&kind)) {
          ++pos_;  // the aggregate name
          CODS_RETURN_NOT_OK(ExpectSymbol("("));
          AggregateSpec agg;
          agg.kind = kind;
          if (kind == AggregateSpec::Kind::kCount && AcceptSymbol("*")) {
            // COUNT(*): empty column.
          } else {
            CODS_ASSIGN_OR_RETURN(agg.column, ParseColumnRef());
          }
          CODS_RETURN_NOT_OK(ExpectSymbol(")"));
          aggs.push_back(std::move(agg));
        } else {
          CODS_ASSIGN_OR_RETURN(std::string col, ParseColumnRef());
          for (const std::string& prev : bare) {
            if (prev == col) {
              return ErrorAt(item_start, "duplicate column '" + col +
                                             "' in the select list");
            }
          }
          bare.push_back(std::move(col));
        }
        if (AcceptSymbol(",")) continue;
        break;
      }
    }
    CODS_RETURN_NOT_OK(ExpectKeyword("FROM"));
    CODS_ASSIGN_OR_RETURN(req.table, ExpectIdent("table name"));
    if (AcceptKeyword("JOIN")) {
      CODS_ASSIGN_OR_RETURN(req.join_table, ExpectIdent("table name"));
      CODS_RETURN_NOT_OK(ExpectKeyword("ON"));
      CODS_ASSIGN_OR_RETURN(req.join_left, ParseColumnRef());
      CODS_RETURN_NOT_OK(ExpectSymbol("="));
      CODS_ASSIGN_OR_RETURN(req.join_right, ParseColumnRef());
    }
    if (AcceptKeyword("WHERE")) {
      CODS_ASSIGN_OR_RETURN(req.where, ParseExpr());
    }
    bool has_group = false;
    if (AcceptKeyword("GROUP")) {
      CODS_RETURN_NOT_OK(ExpectKeyword("BY"));
      has_group = true;
      CODS_ASSIGN_OR_RETURN(req.group_by, ParseColumnRef());
    }
    // Resolve the verb from the select-list shape.
    if (aggs.size() == 1 && bare.empty() && !has_group &&
        aggs[0].kind == AggregateSpec::Kind::kCount && aggs[0].column.empty()) {
      req.verb = QueryRequest::Verb::kCount;
    } else if (!aggs.empty()) {
      req.verb = QueryRequest::Verb::kGroupBy;
      if (!has_group) {
        return Error("aggregates need a GROUP BY clause");
      }
      // The select list may additionally name only the group column;
      // the canonical (ToString) form always prints it.
      for (const std::string& col : bare) {
        if (col != req.group_by) {
          return Error("the select list of a GROUP BY query may only name "
                       "the grouping column; got '" + col + "'");
        }
      }
      req.aggregates = std::move(aggs);
    } else {
      if (has_group) {
        return Error("GROUP BY needs at least one aggregate in the select "
                     "list");
      }
      req.verb = QueryRequest::Verb::kSelect;
      req.columns = std::move(bare);
    }
    if (AcceptKeyword("ORDER")) {
      CODS_RETURN_NOT_OK(ExpectKeyword("BY"));
      if (req.verb != QueryRequest::Verb::kSelect) {
        return Error("ORDER BY applies to row-returning SELECTs only");
      }
      CODS_ASSIGN_OR_RETURN(req.order_by, ParseColumnRef());
      if (AcceptKeyword("DESC")) {
        req.order_desc = true;
      } else {
        (void)AcceptKeyword("ASC");
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (req.verb != QueryRequest::Verb::kSelect) {
        return Error("LIMIT applies to row-returning SELECTs only");
      }
      const Token& tok = Peek();
      Result<Value> n = tok.kind == TokenKind::kNumber &&
                                tok.text.find_first_of(".eE") ==
                                    std::string::npos
                            ? Value::Parse(tok.text, DataType::kInt64)
                            : Result<Value>(Status::InvalidArgument(""));
      // Out-of-range literals fail Value::Parse; keep the positioned
      // diagnostic uniform with every other parser error.
      if (!n.ok() || n.ValueOrDie().int64() < 0) {
        return Error("LIMIT wants a non-negative integer");
      }
      ++pos_;
      req.limit = n.ValueOrDie().int64();
    }
    // Queries end hard at ';' (or end of input) — anything trailing is
    // noise worth a precise message, e.g. an over-closed parenthesis.
    if (!AtEnd() &&
        !(Peek().kind == TokenKind::kSymbol && Peek().text == ";")) {
      return Error("expected ';' after the SELECT statement");
    }
    return req;
  }

  // ---- WHERE expressions ---------------------------------------------------
  //
  // SQL precedence, loosest first: OR, AND, NOT, then primaries
  // (parenthesized expression, compare, IN, BETWEEN, and the
  // `x NOT IN` / `x NOT BETWEEN` forms).

  Result<ExprPtr> ParseExpr() { return ParseOrExpr(); }

  Result<ExprPtr> ParseOrExpr() {
    CODS_ASSIGN_OR_RETURN(ExprPtr first, ParseAndExpr());
    std::vector<ExprPtr> children{std::move(first)};
    while (AcceptKeyword("OR")) {
      CODS_ASSIGN_OR_RETURN(ExprPtr next, ParseAndExpr());
      children.push_back(std::move(next));
    }
    return Expr::Or(std::move(children));  // single child passes through
  }

  Result<ExprPtr> ParseAndExpr() {
    CODS_ASSIGN_OR_RETURN(ExprPtr first, ParseNotExpr());
    std::vector<ExprPtr> children{std::move(first)};
    while (AcceptKeyword("AND")) {
      CODS_ASSIGN_OR_RETURN(ExprPtr next, ParseNotExpr());
      children.push_back(std::move(next));
    }
    return Expr::And(std::move(children));
  }

  Result<ExprPtr> ParseNotExpr() {
    if (AcceptKeyword("NOT")) {
      CODS_ASSIGN_OR_RETURN(ExprPtr child, ParseNotExpr());
      return Expr::Not(std::move(child));
    }
    return ParsePrimaryExpr();
  }

  Result<ExprPtr> ParsePrimaryExpr() {
    if (AcceptSymbol("(")) {
      CODS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      CODS_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    CODS_ASSIGN_OR_RETURN(std::string column, ParseColumnRef());
    bool negate = AcceptKeyword("NOT");
    if (AcceptKeyword("IN")) {
      CODS_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<Value> values;
      while (true) {
        CODS_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        values.push_back(std::move(v));
        if (AcceptSymbol(",")) continue;
        CODS_RETURN_NOT_OK(ExpectSymbol(")"));
        break;
      }
      ExprPtr e = Expr::In(std::move(column), std::move(values));
      return negate ? Expr::Not(std::move(e)) : e;
    }
    if (AcceptKeyword("BETWEEN")) {
      // The first AND after BETWEEN separates the bounds (standard SQL);
      // conjunction continues after the second literal.
      CODS_ASSIGN_OR_RETURN(Value lo, ParseLiteral());
      CODS_RETURN_NOT_OK(ExpectKeyword("AND"));
      CODS_ASSIGN_OR_RETURN(Value hi, ParseLiteral());
      ExprPtr e =
          Expr::Between(std::move(column), std::move(lo), std::move(hi));
      return negate ? Expr::Not(std::move(e)) : e;
    }
    if (negate) return Error("expected IN or BETWEEN after NOT");
    CODS_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp());
    CODS_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
    return Expr::Compare(std::move(column), op, std::move(literal));
  }

  Result<Smo> ParseCreateTable() {
    CODS_ASSIGN_OR_RETURN(std::string name, ExpectIdent("table name"));
    CODS_RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<ColumnSpec> specs;
    std::vector<std::string> key;
    while (true) {
      if (AcceptKeyword("KEY")) {
        CODS_ASSIGN_OR_RETURN(key, ParseNameList());
      } else {
        CODS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
        CODS_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent("type"));
        CODS_ASSIGN_OR_RETURN(DataType type, DataTypeFromString(type_name));
        bool sorted = AcceptKeyword("SORTED");
        specs.push_back(ColumnSpec{col, type, sorted});
      }
      if (AcceptSymbol(",")) continue;
      CODS_RETURN_NOT_OK(ExpectSymbol(")"));
      break;
    }
    CODS_ASSIGN_OR_RETURN(Schema schema,
                          Schema::Make(std::move(specs), std::move(key)));
    return Smo::CreateTable(name, std::move(schema));
  }

  Result<OutSpec> ParseOutSpec() {
    OutSpec spec;
    CODS_ASSIGN_OR_RETURN(spec.name, ExpectIdent("table name"));
    CODS_ASSIGN_OR_RETURN(spec.columns, ParseNameList());
    if (AcceptKeyword("KEY")) {
      CODS_ASSIGN_OR_RETURN(spec.key, ParseNameList());
    }
    return spec;
  }

  // A column reference: `col` or the qualified `table.col` (the shape
  // Schema::ResolveColumnRef / Table::ResolveColumnRef understand).
  Result<std::string> ParseColumnRef() {
    CODS_ASSIGN_OR_RETURN(std::string name, ExpectIdent("column name"));
    if (AcceptSymbol(".")) {
      CODS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      name += "." + col;
    }
    return name;
  }

  Result<std::vector<std::string>> ParseNameList() {
    CODS_RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<std::string> names;
    while (true) {
      CODS_ASSIGN_OR_RETURN(std::string n, ExpectIdent("name"));
      names.push_back(std::move(n));
      if (AcceptSymbol(",")) continue;
      CODS_RETURN_NOT_OK(ExpectSymbol(")"));
      break;
    }
    return names;
  }

  Result<CompareOp> ParseCompareOp() {
    const Token& tok = Peek();
    if (tok.kind != TokenKind::kSymbol) {
      return Error("expected a comparison operator");
    }
    CompareOp op;
    if (tok.text == "=") {
      op = CompareOp::kEq;
    } else if (tok.text == "!=") {
      op = CompareOp::kNe;
    } else if (tok.text == "<") {
      op = CompareOp::kLt;
    } else if (tok.text == "<=") {
      op = CompareOp::kLe;
    } else if (tok.text == ">") {
      op = CompareOp::kGt;
    } else if (tok.text == ">=") {
      op = CompareOp::kGe;
    } else {
      return Error("unknown comparison operator '" + tok.text + "'");
    }
    ++pos_;
    return op;
  }

  Result<Value> ParseLiteral() {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kString) {
      ++pos_;
      return Value(tok.text);
    }
    if (tok.kind == TokenKind::kNumber) {
      ++pos_;
      if (tok.text.find_first_of(".eE") == std::string::npos) {
        return Value::Parse(tok.text, DataType::kInt64);
      }
      return Value::Parse(tok.text, DataType::kDouble);
    }
    return Error("expected a literal");
  }

  Result<Value> ParseLiteralAs(DataType type) {
    const Token& tok = Peek();
    if (tok.kind != TokenKind::kString && tok.kind != TokenKind::kNumber) {
      return Error("expected a literal");
    }
    ++pos_;
    return Value::Parse(tok.text, type);
  }

  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool AcceptKeyword(const char* kw) {
    if (Peek().kind == TokenKind::kIdent && EqualsIgnoreCase(Peek().text, kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error("expected keyword '" + std::string(kw) + "'");
    }
    return Status::OK();
  }

  bool AcceptSymbol(const char* sym) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Error("expected '" + std::string(sym) + "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected " + std::string(what));
    }
    std::string text = Peek().text;
    ++pos_;
    return text;
  }

  // Builds an error Status carrying source position; convertible to any
  // Result<T> via the implicit Status constructor.
  Status Error(const std::string& msg) const { return ErrorAt(Peek(), msg); }

  Status ErrorAt(const Token& tok, const std::string& msg) const {
    return Status::InvalidArgument(FormatPosition(text_, tok.offset) + msg +
                                   (tok.text.empty()
                                        ? std::string(" (at end of input)")
                                        : " (got '" + tok.text + "')"));
  }

  const std::string& text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Statement Statement::FromSmo(Smo smo) {
  Statement stmt;
  stmt.kind = Kind::kSmo;
  stmt.smo = std::move(smo);
  return stmt;
}

Statement Statement::FromQuery(QueryRequest query) {
  Statement stmt;
  stmt.kind = Kind::kQuery;
  stmt.query = std::move(query);
  return stmt;
}

std::string Statement::ToString() const {
  return kind == Kind::kSmo ? smo.ToString() : query.ToString();
}

Result<std::vector<Statement>> ParseStatementScript(const std::string& text) {
  Lexer lexer(text);
  CODS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(text, std::move(tokens));
  return parser.ParseScript();
}

Result<Statement> ParseStatement(const std::string& text) {
  CODS_ASSIGN_OR_RETURN(std::vector<Statement> script,
                        ParseStatementScript(text));
  if (script.size() != 1) {
    return Status::InvalidArgument("expected exactly one statement, got " +
                                   std::to_string(script.size()));
  }
  return std::move(script[0]);
}

Result<std::vector<Smo>> ParseSmoScript(const std::string& text) {
  Lexer lexer(text);
  CODS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(text, std::move(tokens));
  std::vector<std::string> where;
  CODS_ASSIGN_OR_RETURN(std::vector<Statement> script,
                        parser.ParseScript(&where));
  std::vector<Smo> out;
  out.reserve(script.size());
  for (size_t i = 0; i < script.size(); ++i) {
    if (script[i].kind == Statement::Kind::kQuery) {
      return Status::InvalidArgument(
          where[i] +
          "SELECT is a query statement; this surface accepts only schema "
          "modification operators");
    }
    out.push_back(std::move(script[i].smo));
  }
  return out;
}

Result<Smo> ParseSmoStatement(const std::string& text) {
  CODS_ASSIGN_OR_RETURN(std::vector<Smo> script, ParseSmoScript(text));
  if (script.size() != 1) {
    return Status::InvalidArgument("expected exactly one statement, got " +
                                   std::to_string(script.size()));
  }
  return std::move(script[0]);
}

}  // namespace cods

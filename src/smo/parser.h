// The unified statement parser: SMO scripts and SELECT queries share
// one lexer, one grammar, one entry point. One statement per operator
// of Table 1:
//
//   CREATE TABLE S (Employee STRING, Skill STRING, KEY(Employee));
//   DROP TABLE S;
//   RENAME TABLE S TO T;
//   COPY TABLE S TO S2;
//   UNION TABLES A, B INTO C;
//   PARTITION TABLE R INTO A, B WHERE Salary >= 1000;
//   DECOMPOSE TABLE R INTO S(Employee, Skill), T(Employee, Address)
//     KEY(Employee);
//   MERGE TABLES S, T INTO R ON (Employee) KEY(Employee, Skill);
//   ADD COLUMN Address STRING TO R DEFAULT 'unknown';
//   DROP COLUMN Address FROM R;
//   RENAME COLUMN Addr TO Address IN R;
//
// plus the query statement (query/query_engine.h):
//
//   SELECT * FROM R WHERE Skill = 'Typing';
//   SELECT Employee, Address FROM R WHERE Age > 30 AND
//     (City IN ('NY', 'SF') OR NOT Verified BETWEEN 0 AND 1);
//   SELECT COUNT(*) FROM R WHERE NOT (a = 1 OR b = 2);
//   SELECT Dept, SUM(Salary) FROM R WHERE Age >= 21 GROUP BY Dept;
//
// WHERE expressions nest arbitrarily: comparisons, IN, BETWEEN, NOT
// (also `x NOT IN (...)` / `x NOT BETWEEN ... AND ...`), AND, OR, and
// parentheses, with SQL precedence NOT > AND > OR. Keywords are
// case-insensitive; identifiers are case-sensitive; string literals use
// single or double quotes with SQL-style doubling for an embedded quote
// ('it''s'); statements end with ';'.

#ifndef CODS_SMO_PARSER_H_
#define CODS_SMO_PARSER_H_

#include <string>
#include <vector>

#include "evolution/smo.h"
#include "query/query_engine.h"

namespace cods {

/// One parsed statement: a schema modification operator or a query.
struct Statement {
  enum class Kind { kSmo, kQuery };
  Kind kind = Kind::kSmo;
  Smo smo;             // kSmo payload
  QueryRequest query;  // kQuery payload

  static Statement FromSmo(Smo smo);
  static Statement FromQuery(QueryRequest query);

  /// Renders the statement in the script syntax; re-parses to an
  /// equivalent statement (both SMOs and SELECTs round-trip).
  std::string ToString() const;
};

/// Parses a script into a sequence of statements (SMOs and queries
/// interleaved). On error, the Status message includes the offending
/// line and column.
Result<std::vector<Statement>> ParseStatementScript(const std::string& text);

/// Parses exactly one statement (trailing ';' optional).
Result<Statement> ParseStatement(const std::string& text);

/// Parses a script that must consist of SMOs only (the evolution
/// engine's ApplyAll / planner surfaces); a SELECT statement is an
/// error naming its position.
Result<std::vector<Smo>> ParseSmoScript(const std::string& text);

/// Parses exactly one SMO statement (trailing ';' optional).
Result<Smo> ParseSmoStatement(const std::string& text);

}  // namespace cods

#endif  // CODS_SMO_PARSER_H_

// Parser for the SMO script language — the textual equivalent of the
// demo UI's operator forms. One statement per operator of Table 1:
//
//   CREATE TABLE S (Employee STRING, Skill STRING, KEY(Employee));
//   DROP TABLE S;
//   RENAME TABLE S TO T;
//   COPY TABLE S TO S2;
//   UNION TABLES A, B INTO C;
//   PARTITION TABLE R INTO A, B WHERE Salary >= 1000;
//   DECOMPOSE TABLE R INTO S(Employee, Skill), T(Employee, Address)
//     KEY(Employee);
//   MERGE TABLES S, T INTO R ON (Employee) KEY(Employee, Skill);
//   ADD COLUMN Address STRING TO R DEFAULT 'unknown';
//   DROP COLUMN Address FROM R;
//   RENAME COLUMN Addr TO Address IN R;
//
// Keywords are case-insensitive; identifiers are case-sensitive; string
// literals use single or double quotes with SQL-style doubling for an
// embedded quote ('it''s'); statements end with ';'.

#ifndef CODS_SMO_PARSER_H_
#define CODS_SMO_PARSER_H_

#include <string>
#include <vector>

#include "evolution/smo.h"

namespace cods {

/// Parses a script into a sequence of SMOs. On error, the Status message
/// includes the offending line and column.
Result<std::vector<Smo>> ParseSmoScript(const std::string& text);

/// Parses exactly one statement (trailing ';' optional).
Result<Smo> ParseSmoStatement(const std::string& text);

}  // namespace cods

#endif  // CODS_SMO_PARSER_H_

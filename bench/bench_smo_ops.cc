// Table 1 functional coverage, timed: per-SMO latency of the CODS
// data-level engine on a mid-size table. Shows the cost hierarchy the
// paper describes in §2.3 — schema-only ops are ~free, data-movement ops
// (COPY/UNION/PARTITION) cost bitmap traffic but no value changes, and
// DECOMPOSE/MERGE are the interesting ones.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "evolution/engine.h"

namespace cods {
namespace {

constexpr uint64_t kDistinct = 1000;

// Sets up a fresh catalog holding R for each iteration (outside timing).
std::unique_ptr<Catalog> FreshCatalog() {
  auto catalog = std::make_unique<Catalog>();
  CODS_CHECK_OK(catalog->AddTable(bench::CachedR(kDistinct)));
  return catalog;
}

// Runs one SMO per iteration on an engine configured for `threads`
// workers (0: process default). The heavy data-movement benchmarks
// sweep threads via their benchmark Arg so the speedup curve lands in
// BENCH_smo_ops.json; schema-only ops run at the default.
void RunSmo(benchmark::State& state, const Smo& smo, int threads = 0) {
  bench::RunMeta meta(state, ExecContext(threads).num_threads());
  EngineOptions options;
  options.num_threads = threads;
  for (auto _ : state) {
    state.PauseTiming();
    auto catalog = FreshCatalog();
    EvolutionEngine engine(catalog.get(), nullptr, options);
    state.ResumeTiming();
    Status st = engine.Apply(smo);
    CODS_CHECK(st.ok()) << st.ToString();
    benchmark::DoNotOptimize(catalog);
  }
  state.counters["rows"] = static_cast<double>(bench::BenchRows());
}

void BM_Smo_CreateTable(benchmark::State& state) {
  Schema schema({{"a", DataType::kInt64, false}});
  RunSmo(state, Smo::CreateTable("New", schema));
}

void BM_Smo_DropTable(benchmark::State& state) {
  RunSmo(state, Smo::DropTable("R"));
}

void BM_Smo_RenameTable(benchmark::State& state) {
  RunSmo(state, Smo::RenameTable("R", "R2"));
}

void BM_Smo_CopyTable(benchmark::State& state) {
  RunSmo(state, Smo::CopyTable("R", "R2"));
}

void BM_Smo_UnionTables(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  bench::RunMeta meta(state, ExecContext(threads).num_threads());
  EngineOptions options;
  options.num_threads = threads;
  for (auto _ : state) {
    state.PauseTiming();
    auto catalog = FreshCatalog();
    CODS_CHECK_OK(catalog->AddTable(
        bench::CachedR(kDistinct)->WithName("R2")));
    EvolutionEngine engine(catalog.get(), nullptr, options);
    state.ResumeTiming();
    Status st = engine.Apply(Smo::UnionTables("R", "R2", "U"));
    CODS_CHECK(st.ok()) << st.ToString();
  }
}

void BM_Smo_PartitionTable(benchmark::State& state) {
  RunSmo(state,
         Smo::PartitionTable("R", "A", "B", kKeyColumn, CompareOp::kLt,
                             Value(static_cast<int64_t>(kDistinct / 2))),
         static_cast<int>(state.range(0)));
}

void BM_Smo_DecomposeTable(benchmark::State& state) {
  RunSmo(state,
         Smo::DecomposeTable("R", "S", {kKeyColumn, kPayloadColumn}, {},
                             "T", {kKeyColumn, kDependentColumn},
                             {kKeyColumn}),
         static_cast<int>(state.range(0)));
}

void BM_Smo_MergeTables(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  bench::RunMeta meta(state, ExecContext(threads).num_threads());
  EngineOptions options;
  options.num_threads = threads;
  const GeneratedPair& pair = bench::CachedPair(kDistinct);
  for (auto _ : state) {
    state.PauseTiming();
    Catalog catalog;
    CODS_CHECK_OK(catalog.AddTable(pair.s));
    CODS_CHECK_OK(catalog.AddTable(pair.t));
    EvolutionEngine engine(&catalog, nullptr, options);
    state.ResumeTiming();
    Status st =
        engine.Apply(Smo::MergeTables("S", "T", "R", {kKeyColumn}, {}));
    CODS_CHECK(st.ok()) << st.ToString();
  }
}

void BM_Smo_AddColumn(benchmark::State& state) {
  RunSmo(state, Smo::AddColumn("R", {"New", DataType::kInt64, false},
                               Value(int64_t{0})));
}

void BM_Smo_DropColumn(benchmark::State& state) {
  RunSmo(state, Smo::DropColumn("R", kPayloadColumn));
}

void BM_Smo_RenameColumn(benchmark::State& state) {
  RunSmo(state, Smo::RenameColumn("R", kPayloadColumn, "V2"));
}

#define CODS_SMO_BENCH(fn) \
  BENCHMARK(fn)->Unit(benchmark::kMicrosecond)->MinTime(0.1)

// Data-movement ops sweep the worker count so the speedup curve lands
// in BENCH_smo_ops.json (threads counter on every series).
#define CODS_SMO_BENCH_THREADS(fn)                          \
  BENCHMARK(fn)                                             \
      ->Unit(benchmark::kMicrosecond)                       \
      ->MinTime(0.1)                                        \
      ->ArgName("threads")                                  \
      ->Arg(1)                                              \
      ->Arg(2)                                              \
      ->Arg(4)                                              \
      ->Arg(8)

CODS_SMO_BENCH(BM_Smo_CreateTable);
CODS_SMO_BENCH(BM_Smo_DropTable);
CODS_SMO_BENCH(BM_Smo_RenameTable);
CODS_SMO_BENCH(BM_Smo_CopyTable);
CODS_SMO_BENCH_THREADS(BM_Smo_UnionTables);
CODS_SMO_BENCH_THREADS(BM_Smo_PartitionTable);
CODS_SMO_BENCH_THREADS(BM_Smo_DecomposeTable);
CODS_SMO_BENCH_THREADS(BM_Smo_MergeTables);
CODS_SMO_BENCH(BM_Smo_AddColumn);
CODS_SMO_BENCH(BM_Smo_DropColumn);
CODS_SMO_BENCH(BM_Smo_RenameColumn);

}  // namespace
}  // namespace cods

CODS_BENCH_MAIN("smo_ops")

// The server acceptance storm: N concurrent sessions over loopback TCP,
// each pipelining a point/heavy statement mix through the full stack —
// frame codec, event loop, two-lane admission, shared-eval batching.
//
//   * BM_Server_SessionStorm/sessions:N — N blocking Clients connect to
//     an in-process Server over an ephemeral loopback port. Per
//     iteration every session pipelines kStatementsPerRound statements
//     (ExecuteBatch-style: all frames sent before any response is
//     read): mostly identical point COUNTs — the same text lands in the
//     point lane from every session, so drained batches share one
//     compressed eval — plus one identical heavy-lane COUNT (selectivity
//     past the popcount split) and one per-session point COUNT that
//     cannot be shared. Counters:
//       queries_per_sec  total statement throughput across sessions
//                        (larger is better; the gate inverts the ratio)
//       p99_latency_us   99th-percentile client-observed statement
//                        completion latency, measured from the round's
//                        first send to each response's arrival
//       batch_hits       statements answered from another statement's
//                        eval during the measured run (nonzero is the
//                        acceptance bar at 64 sessions)
//
// The session sweep is 8/64; `--readers=N` pins it to one value, so the
// series register from BenchMain's hook (CODS_BENCH_MAIN_REGISTERED).

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "concurrency/versioned_catalog.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

namespace cods {
namespace {

constexpr uint64_t kDistinct = 1000;
constexpr int kStatementsPerRound = 8;

// One session's pipelined round: send every statement, then collect the
// responses in order, recording each statement's completion latency
// relative to the round start (pipelined completion time, which is what
// a batching client observes).
void RunRound(server::Client* client, int session, uint64_t round,
              std::vector<double>* latencies_us) {
  std::vector<std::string> texts;
  texts.reserve(kStatementsPerRound);
  for (int q = 0; q < kStatementsPerRound; ++q) {
    if (q == 0) {
      // Identical across sessions and past the popcount split: the
      // heavy lane's shareable statement.
      texts.push_back("SELECT COUNT(*) FROM R WHERE K < " +
                      std::to_string(kDistinct / 2) + ";");
    } else if (q == 1) {
      // Per-session point statement: never shared.
      texts.push_back(
          "SELECT COUNT(*) FROM R WHERE K = " +
          std::to_string(static_cast<uint64_t>(session) % kDistinct) + ";");
    } else {
      // Identical across sessions within a round: the point lane's
      // shared-eval fodder. Varies per round so no session-local state
      // could fake the sharing.
      texts.push_back("SELECT COUNT(*) FROM R WHERE K = " +
                      std::to_string((round * 7 + static_cast<uint64_t>(q)) %
                                     kDistinct) +
                      ";");
    }
  }
  auto t0 = std::chrono::steady_clock::now();
  std::vector<uint64_t> ids;
  ids.reserve(texts.size());
  std::string out;
  for (const std::string& text : texts) {
    ids.push_back(client->NextRequestId());
    out += server::EncodeExecute(ids.back(), text);
  }
  Status sent = client->SendRaw(out);
  CODS_CHECK(sent.ok()) << sent.ToString();
  for (uint64_t id : ids) {
    auto resp = client->ReceiveFor(id);
    CODS_CHECK(resp.ok()) << resp.status().ToString();
    CODS_CHECK(resp.ValueOrDie().type == server::FrameType::kResultCount)
        << server::FormatWireResponse(resp.ValueOrDie());
    benchmark::DoNotOptimize(resp.ValueOrDie().count);
    latencies_us->push_back(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
  }
}

void BM_Server_SessionStorm(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));

  VersionedCatalog catalog;
  Catalog seed;
  CODS_CHECK_OK(seed.AddTable(bench::CachedR(kDistinct)));
  catalog.Reset(seed);

  server::ServerOptions options;
  options.port = 0;  // ephemeral
  server::Server srv(&catalog, options);
  CODS_CHECK_OK(srv.Start());

  std::vector<std::unique_ptr<server::Client>> clients;
  clients.reserve(static_cast<size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    auto client = server::Client::Connect("127.0.0.1", srv.port());
    CODS_CHECK(client.ok()) << client.status().ToString();
    clients.push_back(std::move(client).ValueOrDie());
  }

  bench::RunMeta meta(state, sessions);
  const uint64_t hits_before = srv.GetStats().batch.batch_hits;
  std::vector<double> latencies_us;
  uint64_t total_statements = 0;
  double total_seconds = 0.0;
  uint64_t round = 0;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_session(
        static_cast<size_t>(sessions));
    auto round_start = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(sessions));
    for (int s = 0; s < sessions; ++s) {
      pool.emplace_back(RunRound, clients[static_cast<size_t>(s)].get(), s,
                        round, &per_session[static_cast<size_t>(s)]);
    }
    for (std::thread& t : pool) t.join();
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - round_start)
                         .count();
    state.SetIterationTime(elapsed);
    total_seconds += elapsed;
    total_statements +=
        static_cast<uint64_t>(sessions) * kStatementsPerRound;
    for (std::vector<double>& mine : per_session) {
      latencies_us.insert(latencies_us.end(), mine.begin(), mine.end());
    }
    ++round;
  }
  const uint64_t hits_after = srv.GetStats().batch.batch_hits;

  clients.clear();  // goodbye before the server drains
  srv.Shutdown();

  state.counters["queries_per_sec"] =
      total_seconds > 0
          ? static_cast<double>(total_statements) / total_seconds
          : 0.0;
  state.counters["p99_latency_us"] = bench::Percentile(latencies_us, 0.99);
  state.counters["batch_hits"] =
      static_cast<double>(hits_after - hits_before);
}

}  // namespace

// Registered from BenchMain's hook: the sweep depends on --readers.
void RegisterServerBenches() {
  auto* storm = ::benchmark::RegisterBenchmark("BM_Server_SessionStorm",
                                               BM_Server_SessionStorm);
  storm->ArgName("sessions")->UseManualTime()->Unit(benchmark::kMillisecond);
  if (bench::BenchReaders() > 0) {
    storm->Arg(bench::BenchReaders());
  } else {
    for (int sessions : {8, 64}) storm->Arg(sessions);
  }
}

}  // namespace cods

CODS_BENCH_MAIN_REGISTERED("server", &cods::RegisterServerBenches)

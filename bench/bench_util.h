// Shared benchmark scaffolding: workload scaling via CODS_BENCH_ROWS,
// cached table generation (tables are reused across series and
// iterations), and the Figure 3 distinct-value sweep.
//
// The paper's testbed uses 10M-row tables; the default here is 100K so
// `for b in build/bench/*; do $b; done` completes in minutes. Set
// CODS_BENCH_ROWS=10000000 to reproduce the paper's scale.

#ifndef CODS_BENCH_BENCH_UTIL_H_
#define CODS_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "common/logging.h"
#include "query/row_executor.h"
#include "workload/generator.h"

namespace cods::bench {

/// Benchmark table size: CODS_BENCH_ROWS env var, default 100'000.
inline uint64_t BenchRows() {
  static const uint64_t rows = [] {
    const char* env = std::getenv("CODS_BENCH_ROWS");
    if (env != nullptr) {
      uint64_t v = std::strtoull(env, nullptr, 10);
      if (v > 0) return v;
    }
    return uint64_t{100'000};
  }();
  return rows;
}

/// The Figure 3 sweep: 100, 1K, 10K, 100K, 1M — capped at BenchRows().
inline std::vector<int64_t> DistinctSweep() {
  std::vector<int64_t> out;
  for (uint64_t d : {100ull, 1'000ull, 10'000ull, 100'000ull, 1'000'000ull}) {
    if (d <= BenchRows()) out.push_back(static_cast<int64_t>(d));
  }
  return out;
}

/// Cached R(K, V, P) for a distinct-value count (generation excluded
/// from timing).
inline std::shared_ptr<const Table> CachedR(uint64_t distinct) {
  static std::map<uint64_t, std::shared_ptr<const Table>>* cache =
      new std::map<uint64_t, std::shared_ptr<const Table>>();
  auto it = cache->find(distinct);
  if (it != cache->end()) return it->second;
  WorkloadSpec spec;
  spec.num_rows = BenchRows();
  spec.num_distinct = distinct;
  auto r = GenerateEvolutionTable(spec);
  CODS_CHECK(r.ok()) << r.status().ToString();
  return cache->emplace(distinct, r.ValueOrDie()).first->second;
}

/// Cached row-store copy of CachedR (the row baselines start from a row
/// store, as the paper's commercial systems do).
inline const RowTable& CachedRowR(uint64_t distinct) {
  static std::map<uint64_t, std::unique_ptr<RowTable>>* cache =
      new std::map<uint64_t, std::unique_ptr<RowTable>>();
  auto it = cache->find(distinct);
  if (it != cache->end()) return *it->second;
  auto heap = MaterializeToRowStore(*CachedR(distinct));
  CODS_CHECK(heap.ok()) << heap.status().ToString();
  return *cache->emplace(distinct, std::move(heap).ValueOrDie())
              .first->second;
}

/// Cached decomposed pair (S, T) for mergence benchmarks.
inline const GeneratedPair& CachedPair(uint64_t distinct) {
  static std::map<uint64_t, GeneratedPair>* cache =
      new std::map<uint64_t, GeneratedPair>();
  auto it = cache->find(distinct);
  if (it != cache->end()) return it->second;
  WorkloadSpec spec;
  spec.num_rows = BenchRows();
  spec.num_distinct = distinct;
  auto pair = GenerateMergePair(spec);
  CODS_CHECK(pair.ok()) << pair.status().ToString();
  return cache->emplace(distinct, std::move(pair).ValueOrDie())
      .first->second;
}

/// Row-store copies of a merge pair.
struct RowPair {
  std::unique_ptr<RowTable> s;
  std::unique_ptr<RowTable> t;
};
inline const RowPair& CachedRowPair(uint64_t distinct) {
  static std::map<uint64_t, RowPair>* cache =
      new std::map<uint64_t, RowPair>();
  auto it = cache->find(distinct);
  if (it != cache->end()) return it->second;
  const GeneratedPair& pair = CachedPair(distinct);
  RowPair rp;
  auto s = MaterializeToRowStore(*pair.s);
  auto t = MaterializeToRowStore(*pair.t);
  CODS_CHECK(s.ok() && t.ok());
  rp.s = std::move(s).ValueOrDie();
  rp.t = std::move(t).ValueOrDie();
  return cache->emplace(distinct, std::move(rp)).first->second;
}

}  // namespace cods::bench

#endif  // CODS_BENCH_BENCH_UTIL_H_

// Shared benchmark scaffolding: workload scaling via CODS_BENCH_ROWS,
// cached table generation (tables are reused across series and
// iterations), the Figure 3 distinct-value sweep, and the CODS_BENCH_MAIN
// entry point that emits machine-readable JSON next to the human output.
//
// The paper's testbed uses 10M-row tables; the default here is 100K so
// `for b in build/bench/*; do $b; done` completes in minutes. Set
// CODS_BENCH_ROWS=10000000 to reproduce the paper's scale.

#ifndef CODS_BENCH_BENCH_UTIL_H_
#define CODS_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "exec/exec.h"
#include "query/row_executor.h"
#include "workload/generator.h"

namespace cods::bench {

/// Reader-thread override for the concurrency benches: --readers=N pins
/// the reader-count sweep to the single value N. 0 (the default) keeps
/// each bench's own sweep.
inline int& ReadersFlag() {
  static int readers = 0;
  return readers;
}
inline int BenchReaders() { return ReadersFlag(); }

/// Number of concurrent writer script streams the concurrency benches
/// run in the background (--writer-scripts=N). Each stream commits SMO
/// scripts against its own victim table; 0 measures the pure-reader
/// baseline. Default 1.
inline int& WriterScriptsFlag() {
  static int streams = 1;
  return streams;
}
inline int BenchWriterScripts() { return WriterScriptsFlag(); }

/// Nearest-rank percentile of `samples` (q in [0, 1]); 0 when empty.
/// Takes the vector by value: percentile extraction sorts.
inline double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double rank = q * static_cast<double>(samples.size() - 1);
  size_t idx = static_cast<size_t>(rank + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

/// Entry point shared by all bench binaries (via CODS_BENCH_MAIN). Runs
/// the registered benchmarks with the human console reporter and, unless
/// the caller passed their own --benchmark_out, also writes the full
/// results as JSON to BENCH_<name>.json in the working directory so perf
/// trajectories can be tracked across PRs without scraping stdout
/// (scripts/check_bench_regression.py consumes these files).
///
/// Recognizes (and consumes before google-benchmark sees the argument
/// list):
///   --threads=N         process default thread count for every parallel
///                       path that does not sweep thread counts itself
///   --readers=N         pin the concurrency benches' reader sweep to N
///   --writer-scripts=N  background writer script streams (0 = none)
///
/// `register_fn`, when non-null, runs after flag consumption and before
/// benchmark registration is frozen — benches whose series depend on the
/// flags (the --readers sweep) register there via
/// ::benchmark::RegisterBenchmark instead of the BENCHMARK macro, which
/// runs at static-init time before flags exist.
inline int BenchMain(int argc, char** argv, const char* name,
                     void (*register_fn)() = nullptr) {
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 2);
  bool has_out = false;
  int default_threads = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      default_threads = std::atoi(argv[i] + 10);
      continue;  // ours, not google-benchmark's
    }
    if (std::strncmp(argv[i], "--readers=", 10) == 0) {
      ReadersFlag() = std::atoi(argv[i] + 10);
      continue;
    }
    if (std::strncmp(argv[i], "--writer-scripts=", 17) == 0) {
      WriterScriptsFlag() = std::atoi(argv[i] + 17);
      continue;
    }
    // Exact-prefix "--benchmark_out=": "--benchmark_out_format" alone
    // must not suppress the default JSON file.
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
    args.push_back(argv[i]);
  }
  if (default_threads > 0) SetDefaultThreads(default_threads);
  if (register_fn != nullptr) register_fn();
  std::string out_flag = std::string("--benchmark_out=BENCH_") + name + ".json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  // Context keys land in the JSON header, so the regression gate can
  // refuse to compare runs taken at different thread settings.
  ::benchmark::AddCustomContext(
      "cods_threads",
      std::to_string(ExecContext(default_threads).num_threads()));
  int args_count = static_cast<int>(args.size());
  ::benchmark::Initialize(&args_count, args.data());
  if (::benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  auto wall_start = std::chrono::steady_clock::now();
  ::benchmark::RunSpecifiedBenchmarks();
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  std::fprintf(stderr, "BENCH_%s wall-clock: %.2fs\n", name, wall_s);
  ::benchmark::Shutdown();
  return 0;
}

/// Attaches the per-run execution metadata counters every bench series
/// should carry: the thread count the series ran at and the wall-clock
/// time of the whole measured loop in milliseconds (google-benchmark's
/// real_time is per-iteration; wall_ms lets the regression gate sanity-
/// check total run cost too).
class RunMeta {
 public:
  explicit RunMeta(benchmark::State& state, int threads)
      : state_(state),
        threads_(threads),
        start_(std::chrono::steady_clock::now()) {}
  ~RunMeta() {
    state_.counters["threads"] = static_cast<double>(threads_);
    state_.counters["wall_ms"] =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
  }
  RunMeta(const RunMeta&) = delete;
  RunMeta& operator=(const RunMeta&) = delete;

 private:
  benchmark::State& state_;
  int threads_;
  std::chrono::steady_clock::time_point start_;
};

/// Benchmark table size: CODS_BENCH_ROWS env var, default 100'000.
inline uint64_t BenchRows() {
  static const uint64_t rows = [] {
    const char* env = std::getenv("CODS_BENCH_ROWS");
    if (env != nullptr) {
      uint64_t v = std::strtoull(env, nullptr, 10);
      if (v > 0) return v;
    }
    return uint64_t{100'000};
  }();
  return rows;
}

/// The Figure 3 sweep: 100, 1K, 10K, 100K, 1M — capped at BenchRows().
inline std::vector<int64_t> DistinctSweep() {
  std::vector<int64_t> out;
  for (uint64_t d : {100ull, 1'000ull, 10'000ull, 100'000ull, 1'000'000ull}) {
    if (d <= BenchRows()) out.push_back(static_cast<int64_t>(d));
  }
  return out;
}

/// Cached R(K, V, P) for a distinct-value count (generation excluded
/// from timing).
inline std::shared_ptr<const Table> CachedR(uint64_t distinct) {
  static std::map<uint64_t, std::shared_ptr<const Table>>* cache =
      new std::map<uint64_t, std::shared_ptr<const Table>>();
  auto it = cache->find(distinct);
  if (it != cache->end()) return it->second;
  WorkloadSpec spec;
  spec.num_rows = BenchRows();
  spec.num_distinct = distinct;
  auto r = GenerateEvolutionTable(spec);
  CODS_CHECK(r.ok()) << r.status().ToString();
  return cache->emplace(distinct, r.ValueOrDie()).first->second;
}

/// Cached row-store copy of CachedR (the row baselines start from a row
/// store, as the paper's commercial systems do).
inline const RowTable& CachedRowR(uint64_t distinct) {
  static std::map<uint64_t, std::unique_ptr<RowTable>>* cache =
      new std::map<uint64_t, std::unique_ptr<RowTable>>();
  auto it = cache->find(distinct);
  if (it != cache->end()) return *it->second;
  auto heap = MaterializeToRowStore(*CachedR(distinct));
  CODS_CHECK(heap.ok()) << heap.status().ToString();
  return *cache->emplace(distinct, std::move(heap).ValueOrDie())
              .first->second;
}

/// Cached decomposed pair (S, T) for mergence benchmarks.
inline const GeneratedPair& CachedPair(uint64_t distinct) {
  static std::map<uint64_t, GeneratedPair>* cache =
      new std::map<uint64_t, GeneratedPair>();
  auto it = cache->find(distinct);
  if (it != cache->end()) return it->second;
  WorkloadSpec spec;
  spec.num_rows = BenchRows();
  spec.num_distinct = distinct;
  auto pair = GenerateMergePair(spec);
  CODS_CHECK(pair.ok()) << pair.status().ToString();
  return cache->emplace(distinct, std::move(pair).ValueOrDie())
      .first->second;
}

/// Row-store copies of a merge pair.
struct RowPair {
  std::unique_ptr<RowTable> s;
  std::unique_ptr<RowTable> t;
};
inline const RowPair& CachedRowPair(uint64_t distinct) {
  static std::map<uint64_t, RowPair>* cache =
      new std::map<uint64_t, RowPair>();
  auto it = cache->find(distinct);
  if (it != cache->end()) return it->second;
  const GeneratedPair& pair = CachedPair(distinct);
  RowPair rp;
  auto s = MaterializeToRowStore(*pair.s);
  auto t = MaterializeToRowStore(*pair.t);
  CODS_CHECK(s.ok() && t.ok());
  rp.s = std::move(s).ValueOrDie();
  rp.t = std::move(t).ValueOrDie();
  return cache->emplace(distinct, std::move(rp)).first->second;
}

}  // namespace cods::bench

/// Defines main() for a bench binary. `name` becomes the JSON output
/// file: CODS_BENCH_MAIN("wah") writes BENCH_wah.json.
#define CODS_BENCH_MAIN(name)                               \
  int main(int argc, char** argv) {                         \
    return ::cods::bench::BenchMain(argc, argv, name);      \
  }

/// CODS_BENCH_MAIN plus a flag-aware registration hook: `register_fn`
/// (a `void()` function) runs after --readers / --writer-scripts are
/// parsed, so it can shape the registered series from the flags.
#define CODS_BENCH_MAIN_REGISTERED(name, register_fn)            \
  int main(int argc, char** argv) {                              \
    return ::cods::bench::BenchMain(argc, argv, name,            \
                                    (register_fn));              \
  }

#endif  // CODS_BENCH_BENCH_UTIL_H_

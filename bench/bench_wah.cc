// Ablation A1: WAH compressed bitmap operations vs uncompressed bitmaps
// across bit densities — the §2.2 design choice. At low density (the
// regime of per-value bitmaps in high-cardinality columns) WAH wins on
// both space (see the `wah_bytes`/`plain_bytes` counters) and op time;
// at high density plain bitmaps catch up.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bitmap/plain_bitmap.h"
#include "bitmap/wah_ops.h"
#include "common/random.h"

namespace cods {
namespace {

constexpr uint64_t kBits = 1 << 22;  // 4M bits per operand

// density = 1 / (1 << range(0)): Arg(0)=50%, Arg(4)≈3%, Arg(10)≈0.1%...
double DensityFromArg(int64_t arg) { return 1.0 / (uint64_t{2} << arg); }

WahBitmap MakeWah(double density, uint64_t seed) {
  Rng rng(seed);
  WahBitmap bm;
  uint64_t pos = 0;
  // Geometric gaps approximate Bernoulli(density) fast.
  while (pos < kBits) {
    uint64_t gap = static_cast<uint64_t>(
        rng.NextDouble() < density ? 0 : rng.Uniform(0, static_cast<int64_t>(2.0 / density)));
    pos += gap;
    if (pos >= kBits) break;
    bm.AppendSetBit(pos);
    ++pos;
  }
  bm.AppendRun(false, kBits - bm.size());
  return bm;
}

void BM_WahAnd(benchmark::State& state) {
  double density = DensityFromArg(state.range(0));
  WahBitmap a = MakeWah(density, 1);
  WahBitmap b = MakeWah(density, 2);
  for (auto _ : state) {
    WahBitmap c = WahAnd(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.counters["density_pct"] = density * 100;
  state.counters["wah_bytes"] = static_cast<double>(a.SizeBytes());
}

void BM_PlainAnd(benchmark::State& state) {
  double density = DensityFromArg(state.range(0));
  PlainBitmap a = PlainBitmap::FromWah(MakeWah(density, 1));
  PlainBitmap b = PlainBitmap::FromWah(MakeWah(density, 2));
  for (auto _ : state) {
    PlainBitmap c = a.And(b);
    benchmark::DoNotOptimize(c);
  }
  state.counters["density_pct"] = density * 100;
  state.counters["plain_bytes"] = static_cast<double>(a.SizeBytes());
}

void BM_WahOr(benchmark::State& state) {
  double density = DensityFromArg(state.range(0));
  WahBitmap a = MakeWah(density, 3);
  WahBitmap b = MakeWah(density, 4);
  for (auto _ : state) {
    WahBitmap c = WahOr(a, b);
    benchmark::DoNotOptimize(c);
  }
}

void BM_PlainOr(benchmark::State& state) {
  double density = DensityFromArg(state.range(0));
  PlainBitmap a = PlainBitmap::FromWah(MakeWah(density, 3));
  PlainBitmap b = PlainBitmap::FromWah(MakeWah(density, 4));
  for (auto _ : state) {
    PlainBitmap c = a.Or(b);
    benchmark::DoNotOptimize(c);
  }
}

void BM_WahCountOnes(benchmark::State& state) {
  WahBitmap a = MakeWah(DensityFromArg(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.CountOnes());
  }
}

void BM_WahDecompress(benchmark::State& state) {
  // Cost of the decompression CODS avoids.
  WahBitmap a = MakeWah(DensityFromArg(state.range(0)), 6);
  for (auto _ : state) {
    PlainBitmap p = PlainBitmap::FromWah(a);
    benchmark::DoNotOptimize(p);
  }
}

void BM_WahRecompress(benchmark::State& state) {
  // Cost of the re-compression CODS avoids.
  PlainBitmap p = PlainBitmap::FromWah(MakeWah(DensityFromArg(state.range(0)), 7));
  for (auto _ : state) {
    WahBitmap w = p.ToWah();
    benchmark::DoNotOptimize(w);
  }
}

// ---- k-way union/intersection: single-pass kernel vs pairwise fold ---------
//
// Models the per-predicate OR over qualifying value bitmaps (EvalPredicate)
// and the multi-predicate AND (EvalConjunction): k operands of kBits bits
// each, ~1/k density so the union stays ~63% full like a real dictionary
// column's qualifying subset.

constexpr uint64_t kKWayBits = 1 << 20;  // 1M bits per operand

std::vector<WahBitmap> MakeOperands(int64_t k) {
  std::vector<WahBitmap> ops;
  ops.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    Rng rng(900 + static_cast<uint64_t>(i));
    WahBitmap bm;
    uint64_t pos = 0;
    double density = 1.0 / static_cast<double>(k);
    while (pos < kKWayBits) {
      uint64_t gap = static_cast<uint64_t>(
          rng.Uniform(0, static_cast<int64_t>(2.0 / density)));
      pos += gap;
      if (pos >= kKWayBits) break;
      bm.AppendSetBit(pos);
      ++pos;
    }
    bm.AppendRun(false, kKWayBits - bm.size());
    ops.push_back(std::move(bm));
  }
  return ops;
}

std::vector<const WahBitmap*> Ptrs(const std::vector<WahBitmap>& ops) {
  std::vector<const WahBitmap*> ptrs;
  for (const WahBitmap& bm : ops) ptrs.push_back(&bm);
  return ptrs;
}

void BM_WahOrMany(benchmark::State& state) {
  std::vector<WahBitmap> ops = MakeOperands(state.range(0));
  std::vector<const WahBitmap*> ptrs = Ptrs(ops);
  for (auto _ : state) {
    WahBitmap u = WahOrMany(ptrs, kKWayBits);
    benchmark::DoNotOptimize(u);
  }
}

void BM_WahOrPairwiseFold(benchmark::State& state) {
  std::vector<WahBitmap> ops = MakeOperands(state.range(0));
  for (auto _ : state) {
    WahBitmap acc;
    acc.AppendRun(false, kKWayBits);
    for (const WahBitmap& bm : ops) acc = WahOr(acc, bm);
    benchmark::DoNotOptimize(acc);
  }
}

// Fold with the in-place accumulator: each step merges into a recycled
// buffer and swaps, so the steady state allocates nothing per step —
// contrast with BM_WahOrPairwiseFold, which materializes (and frees) a
// fresh bitmap per operand. This is the shape of callers that cannot
// batch into WahOrMany (operands arrive one at a time).
void BM_WahOrWithFold(benchmark::State& state) {
  std::vector<WahBitmap> ops = MakeOperands(state.range(0));
  for (auto _ : state) {
    WahBitmap acc;
    acc.AppendRun(false, kKWayBits);
    for (const WahBitmap& bm : ops) acc.OrWith(bm);
    benchmark::DoNotOptimize(acc);
  }
}

void BM_WahOrManyCount(benchmark::State& state) {
  std::vector<WahBitmap> ops = MakeOperands(state.range(0));
  std::vector<const WahBitmap*> ptrs = Ptrs(ops);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WahOrManyCount(ptrs, kKWayBits));
  }
}

// AND operands: complements of sparse bitmaps, so the intersection keeps
// most bits (the EvalConjunction regime where every predicate passes
// most rows).
std::vector<WahBitmap> MakeDenseOperands(int64_t k) {
  std::vector<WahBitmap> sparse = MakeOperands(k);
  std::vector<WahBitmap> dense;
  dense.reserve(sparse.size());
  for (const WahBitmap& bm : sparse) dense.push_back(WahNot(bm));
  return dense;
}

void BM_WahAndMany(benchmark::State& state) {
  std::vector<WahBitmap> ops = MakeDenseOperands(state.range(0));
  std::vector<const WahBitmap*> ptrs = Ptrs(ops);
  for (auto _ : state) {
    WahBitmap m = WahAndMany(ptrs, kKWayBits);
    benchmark::DoNotOptimize(m);
  }
}

void BM_WahAndPairwiseFold(benchmark::State& state) {
  std::vector<WahBitmap> ops = MakeDenseOperands(state.range(0));
  for (auto _ : state) {
    WahBitmap acc;
    acc.AppendRun(true, kKWayBits);
    for (const WahBitmap& bm : ops) acc = WahAnd(acc, bm);
    benchmark::DoNotOptimize(acc);
  }
}

void BM_WahAndWithFold(benchmark::State& state) {
  std::vector<WahBitmap> ops = MakeDenseOperands(state.range(0));
  for (auto _ : state) {
    WahBitmap acc;
    acc.AppendRun(true, kKWayBits);
    for (const WahBitmap& bm : ops) acc.AndWith(bm);
    benchmark::DoNotOptimize(acc);
  }
}

// Clustered operands: each operand holds a few dense clusters with long
// zero fills between them — the value-bitmap shape of clustered or
// sorted columns. This is the regime the k-way kernel's heap/active-list
// merge targets: per output group it touches only the operands whose
// current run ends there, so the cost is nearly flat in k while the
// pairwise fold stays O(k · words).
std::vector<WahBitmap> MakeClusteredOperands(int64_t k) {
  std::vector<WahBitmap> ops;
  ops.reserve(static_cast<size_t>(k));
  uint64_t cluster = kKWayBits / static_cast<uint64_t>(k) / 4;
  for (int64_t i = 0; i < k; ++i) {
    Rng rng(77 + static_cast<uint64_t>(i));
    WahBitmap bm;
    for (int c = 0; c < 4; ++c) {
      uint64_t start = static_cast<uint64_t>(
          rng.Uniform(0, static_cast<int64_t>(kKWayBits - cluster)));
      if (start < bm.size()) start = bm.size();
      if (start + cluster > kKWayBits) break;
      bm.AppendRun(false, start - bm.size());
      for (uint64_t p = 0; p < cluster; ++p) {
        bm.AppendBit(rng.Uniform(0, 2) == 0);
      }
    }
    bm.AppendRun(false, kKWayBits - bm.size());
    ops.push_back(std::move(bm));
  }
  return ops;
}

void BM_WahOrManyClustered(benchmark::State& state) {
  std::vector<WahBitmap> ops = MakeClusteredOperands(state.range(0));
  std::vector<const WahBitmap*> ptrs = Ptrs(ops);
  for (auto _ : state) {
    WahBitmap u = WahOrMany(ptrs, kKWayBits);
    benchmark::DoNotOptimize(u);
  }
}

void BM_WahOrFoldClustered(benchmark::State& state) {
  std::vector<WahBitmap> ops = MakeClusteredOperands(state.range(0));
  for (auto _ : state) {
    WahBitmap acc;
    acc.AppendRun(false, kKWayBits);
    for (const WahBitmap& bm : ops) acc = WahOr(acc, bm);
    benchmark::DoNotOptimize(acc);
  }
}

// Uniformly-scattered operands: short literal runs of 1–3 groups with
// comparably short zero fills between them, independent of k. In this
// shape nearly every operand is in the merge's active list for nearly
// every output group, so the event-driven merge has no fills to gallop
// over and pays O(k) per group, going memory-bound past k ≈ 32 — the
// regime the cache-blocked operand-grouping path targets (each operand
// deposits into a 4 KB L1-resident accumulator block instead).
std::vector<WahBitmap> MakeScatteredOperands(int64_t k) {
  std::vector<WahBitmap> ops;
  ops.reserve(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    Rng rng(4200 + static_cast<uint64_t>(i));
    WahBitmap bm;
    while (bm.size() < kKWayBits) {
      uint64_t lit_groups = static_cast<uint64_t>(rng.Uniform(1, 4));
      for (uint64_t g = 0; g < lit_groups && bm.size() < kKWayBits; ++g) {
        // A sparse literal group: a handful of set bits so the group is
        // neither all-zero nor all-one.
        uint64_t payload = 0;
        for (int s = 0; s < 3; ++s) {
          payload |= uint64_t{1} << rng.Uniform(0, 63);
        }
        uint64_t nbits = std::min<uint64_t>(63, kKWayBits - bm.size());
        bm.AppendBits(payload, nbits);
      }
      uint64_t fill_groups = static_cast<uint64_t>(rng.Uniform(1, 4));
      uint64_t nbits =
          std::min<uint64_t>(fill_groups * 63, kKWayBits - bm.size());
      bm.AppendRun(false, nbits);
    }
    ops.push_back(std::move(bm));
  }
  return ops;
}

void BM_WahOrManyScattered(benchmark::State& state) {
  std::vector<WahBitmap> ops = MakeScatteredOperands(state.range(0));
  std::vector<const WahBitmap*> ptrs = Ptrs(ops);
  for (auto _ : state) {
    WahBitmap u = WahOrMany(ptrs, kKWayBits);
    benchmark::DoNotOptimize(u);
  }
}

void BM_WahOrManyCountScattered(benchmark::State& state) {
  std::vector<WahBitmap> ops = MakeScatteredOperands(state.range(0));
  std::vector<const WahBitmap*> ptrs = Ptrs(ops);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WahOrManyCount(ptrs, kKWayBits));
  }
}

void KSweep(benchmark::internal::Benchmark* b) {
  for (int64_t k : {2, 8, 32, 64}) b->Arg(k);
  b->Unit(benchmark::kMicrosecond);
}

void WideKSweep(benchmark::internal::Benchmark* b) {
  for (int64_t k : {32, 64, 128, 256}) b->Arg(k);
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_WahOrMany)->Apply(KSweep);
BENCHMARK(BM_WahOrPairwiseFold)->Apply(KSweep);
BENCHMARK(BM_WahOrWithFold)->Apply(KSweep);
BENCHMARK(BM_WahOrManyCount)->Apply(KSweep);
BENCHMARK(BM_WahAndMany)->Apply(KSweep);
BENCHMARK(BM_WahAndPairwiseFold)->Apply(KSweep);
BENCHMARK(BM_WahAndWithFold)->Apply(KSweep);
BENCHMARK(BM_WahOrManyClustered)->Apply(WideKSweep);
BENCHMARK(BM_WahOrFoldClustered)->Apply(WideKSweep);
BENCHMARK(BM_WahOrManyScattered)->Apply(WideKSweep);
BENCHMARK(BM_WahOrManyCountScattered)->Apply(WideKSweep);

void Sweep(benchmark::internal::Benchmark* b) {
  // Densities: 50%, ~6%, ~0.8%, ~0.05%.
  for (int64_t a : {0, 3, 6, 10}) b->Arg(a);
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_WahAnd)->Apply(Sweep);
BENCHMARK(BM_PlainAnd)->Apply(Sweep);
BENCHMARK(BM_WahOr)->Apply(Sweep);
BENCHMARK(BM_PlainOr)->Apply(Sweep);
BENCHMARK(BM_WahCountOnes)->Apply(Sweep);
BENCHMARK(BM_WahDecompress)->Apply(Sweep);
BENCHMARK(BM_WahRecompress)->Apply(Sweep);

}  // namespace
}  // namespace cods

CODS_BENCH_MAIN("wah")

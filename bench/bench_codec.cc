// The density-adaptive codec vs the all-WAH path (PR 8's tentpole
// claim): for each representation pair, pairwise AND/OR/AND-count over
// the same bit content executed through the codec's specialized kernels
// (BM_Codec*) and through plain WAH merges on the re-encoded interchange
// form (BM_WahPath*). The committed series document the two regimes the
// codec targets:
//
//   * sparse x sparse (array containers): galloping sorted-set
//     intersection touches only the set positions, where the WAH merge
//     still walks every code word;
//   * dense x dense (bitset containers): word-parallel AND + popcount
//     auto-vectorizes, where WAH pays per-word decode branching for
//     literals that compress nothing.
//
// The mixed (WAH x WAH) pairs are committed too: they must track the
// plain WAH path (same kernel underneath), pinning "no regression in the
// regime WAH already handled well".

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bitmap/codec.h"
#include "bitmap/wah_ops.h"
#include "common/random.h"

namespace cods {
namespace {

constexpr uint64_t kBits = 1 << 22;  // 4M bits per operand

// density = 1 / (2 << arg): 0 -> 50% (bitset), 2 -> 12.5% (WAH),
// 10 -> ~0.05% (array).
double DensityFromArg(int64_t arg) { return 1.0 / (uint64_t{2} << arg); }

WahBitmap MakeWah(double density, uint64_t seed) {
  Rng rng(seed);
  WahBitmap bm;
  uint64_t pos = 0;
  while (pos < kBits) {
    uint64_t gap = static_cast<uint64_t>(
        rng.NextDouble() < density
            ? 0
            : rng.Uniform(0, static_cast<int64_t>(2.0 / density)));
    pos += gap;
    if (pos >= kBits) break;
    bm.AppendSetBit(pos);
    ++pos;
  }
  bm.AppendRun(false, kBits - bm.size());
  return bm;
}

ValueBitmap MakeValue(double density, uint64_t seed) {
  return ValueBitmap::FromWah(MakeWah(density, seed));
}

void PairCounters(benchmark::State& state, const ValueBitmap& a,
                  const ValueBitmap& b) {
  state.counters["rep_a"] = static_cast<double>(a.rep());
  state.counters["rep_b"] = static_cast<double>(b.rep());
  state.counters["codec_bytes"] = static_cast<double>(a.SizeBytes());
  state.counters["wah_bytes"] = static_cast<double>(a.ToWah().SizeBytes());
}

// ---- Pairwise kernels, codec vs WAH path ---------------------------------

void BM_CodecAnd(benchmark::State& state) {
  ValueBitmap a = MakeValue(DensityFromArg(state.range(0)), 1);
  ValueBitmap b = MakeValue(DensityFromArg(state.range(1)), 2);
  for (auto _ : state) {
    ValueBitmap c = CodecAnd(a, b);
    benchmark::DoNotOptimize(c);
  }
  PairCounters(state, a, b);
}

void BM_WahPathAnd(benchmark::State& state) {
  WahBitmap a = MakeWah(DensityFromArg(state.range(0)), 1);
  WahBitmap b = MakeWah(DensityFromArg(state.range(1)), 2);
  for (auto _ : state) {
    WahBitmap c = WahAnd(a, b);
    benchmark::DoNotOptimize(c);
  }
}

void BM_CodecOr(benchmark::State& state) {
  ValueBitmap a = MakeValue(DensityFromArg(state.range(0)), 3);
  ValueBitmap b = MakeValue(DensityFromArg(state.range(1)), 4);
  for (auto _ : state) {
    ValueBitmap c = CodecOr(a, b);
    benchmark::DoNotOptimize(c);
  }
  PairCounters(state, a, b);
}

void BM_WahPathOr(benchmark::State& state) {
  WahBitmap a = MakeWah(DensityFromArg(state.range(0)), 3);
  WahBitmap b = MakeWah(DensityFromArg(state.range(1)), 4);
  for (auto _ : state) {
    WahBitmap c = WahOr(a, b);
    benchmark::DoNotOptimize(c);
  }
}

// The GROUP BY histogram kernel: |a & b| without materializing.
void BM_CodecAndCount(benchmark::State& state) {
  ValueBitmap a = MakeValue(DensityFromArg(state.range(0)), 5);
  ValueBitmap b = MakeValue(DensityFromArg(state.range(1)), 6);
  for (auto _ : state) {
    uint64_t n = CodecAndCount(a, b);
    benchmark::DoNotOptimize(n);
  }
  PairCounters(state, a, b);
}

void BM_WahPathAndCount(benchmark::State& state) {
  WahBitmap a = MakeWah(DensityFromArg(state.range(0)), 5);
  WahBitmap b = MakeWah(DensityFromArg(state.range(1)), 6);
  for (auto _ : state) {
    uint64_t n = WahAndCount(a, b);
    benchmark::DoNotOptimize(n);
  }
}

// ---- k-way union (EvalLeafBitmap shape) ----------------------------------
//
// k disjoint-ish sparse operands (one per qualifying dictionary value,
// ~1/k density each) unioned into the WAH selection form.

std::vector<ValueBitmap> MakeSparseOperands(int64_t k) {
  std::vector<ValueBitmap> out;
  out.reserve(static_cast<size_t>(k));
  double density = 1.0 / static_cast<double>(k * 64);
  for (int64_t i = 0; i < k; ++i) {
    out.push_back(MakeValue(density, 100 + static_cast<uint64_t>(i)));
  }
  return out;
}

void BM_CodecOrManySparse(benchmark::State& state) {
  std::vector<ValueBitmap> vbs = MakeSparseOperands(state.range(0));
  std::vector<const ValueBitmap*> operands;
  for (const ValueBitmap& vb : vbs) operands.push_back(&vb);
  for (auto _ : state) {
    WahBitmap c = CodecOrManyWah(operands, kBits);
    benchmark::DoNotOptimize(c);
  }
  state.counters["rep_first"] = static_cast<double>(vbs[0].rep());
}

void BM_WahPathOrManySparse(benchmark::State& state) {
  std::vector<ValueBitmap> vbs = MakeSparseOperands(state.range(0));
  std::vector<WahBitmap> wahs;
  for (const ValueBitmap& vb : vbs) wahs.push_back(vb.ToWah());
  std::vector<const WahBitmap*> operands;
  for (const WahBitmap& w : wahs) operands.push_back(&w);
  for (auto _ : state) {
    WahBitmap c = WahOrMany(operands, kBits);
    benchmark::DoNotOptimize(c);
  }
}

// Density-pair sweep: array x array, array x WAH, array x bitset,
// WAH x WAH, WAH x bitset, bitset x bitset.
void RepPairSweep(benchmark::internal::Benchmark* b) {
  b->Args({10, 10})
      ->Args({10, 2})
      ->Args({10, 0})
      ->Args({2, 2})
      ->Args({2, 0})
      ->Args({0, 0})
      ->Unit(benchmark::kMicrosecond);
}

void KSweep(benchmark::internal::Benchmark* b) {
  for (int64_t k : {8, 32, 128}) b->Arg(k);
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_CodecAnd)->Apply(RepPairSweep);
BENCHMARK(BM_WahPathAnd)->Apply(RepPairSweep);
BENCHMARK(BM_CodecOr)->Apply(RepPairSweep);
BENCHMARK(BM_WahPathOr)->Apply(RepPairSweep);
BENCHMARK(BM_CodecAndCount)->Apply(RepPairSweep);
BENCHMARK(BM_WahPathAndCount)->Apply(RepPairSweep);
BENCHMARK(BM_CodecOrManySparse)->Apply(KSweep);
BENCHMARK(BM_WahPathOrManySparse)->Apply(KSweep);

}  // namespace
}  // namespace cods

CODS_BENCH_MAIN("codec")

// The query API on the compressed store: nested-expression selection at
// swept selectivities, count-only vs materializing plans, and
// group-by-sum — all through the QueryEngine/Expr path the SELECT
// statement grammar compiles to.
//
//   * BM_Query_NestedSelect / BM_Query_NestedCount: the acceptance-shape
//     expression  K < t AND (V >= 20 OR NOT P IN (...))  with the
//     threshold t swept so the outer selectivity moves ~10% -> ~100%.
//     Leaves evaluate in parallel (one task each), AND/OR combine in the
//     single-pass k-way kernels; the Count series never materializes the
//     root bitmap.
//   * BM_Query_WideOrSelect: a flattened 16-leaf OR (the IN-list /
//     union-of-predicates regime) — exercises k-way fan-in after
//     normalization.
//   * BM_Query_GroupBySum: SUM(V) GROUP BY P with a WHERE narrowing,
//     one task per group over compressed AND-counts.
//
// All series sweep --threads 1/2/4/8 via the ExecContext and carry the
// threads / wall_ms counters for the regression gate.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "query/query_engine.h"

namespace cods {
namespace {

constexpr uint64_t kDistinct = 1000;

Value I64(uint64_t v) { return Value(static_cast<int64_t>(v)); }

// K < threshold AND (V >= 20 OR NOT P IN (1, 2, 3)) — the nested
// acceptance shape; `pct` positions the threshold in the key domain.
ExprPtr NestedExpr(int64_t pct) {
  return Expr::And(
      {Expr::Compare(kKeyColumn, CompareOp::kLt, I64(kDistinct * pct / 100)),
       Expr::Or({Expr::Compare(kPayloadColumn, CompareOp::kGe, I64(20)),
                 Expr::Not(Expr::In(kPayloadColumn,
                                    {I64(1), I64(2), I64(3)}))})});
}

void BM_Query_NestedSelect(benchmark::State& state) {
  const int64_t pct = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  auto r = bench::CachedR(kDistinct);
  ExprPtr expr = NestedExpr(pct);
  ExecContext ctx(threads);
  bench::RunMeta meta(state, ctx.num_threads());
  uint64_t selected = 0;
  for (auto _ : state) {
    auto out = QueryEngine::SelectRows(*r, {}, expr, "sel", &ctx);
    CODS_CHECK(out.ok()) << out.status().ToString();
    selected = out.ValueOrDie()->rows();
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(r->rows());
  state.counters["selected"] = static_cast<double>(selected);
}

void BM_Query_NestedCount(benchmark::State& state) {
  const int64_t pct = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  auto r = bench::CachedR(kDistinct);
  ExprPtr expr = NestedExpr(pct);
  ExecContext ctx(threads);
  bench::RunMeta meta(state, ctx.num_threads());
  uint64_t count = 0;
  for (auto _ : state) {
    auto out = QueryEngine::CountRows(*r, expr, &ctx);
    CODS_CHECK(out.ok()) << out.status().ToString();
    count = out.ValueOrDie();
    benchmark::DoNotOptimize(count);
  }
  state.counters["rows"] = static_cast<double>(r->rows());
  state.counters["selected"] = static_cast<double>(count);
}

// A 16-leaf disjunction over scattered key ranges: after normalization
// this is ONE 16-way WahOrMany fan-in.
void BM_Query_WideOrCount(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto r = bench::CachedR(kDistinct);
  std::vector<ExprPtr> leaves;
  for (uint64_t i = 0; i < 16; ++i) {
    uint64_t lo = i * kDistinct / 16;
    leaves.push_back(
        Expr::Between(kKeyColumn, I64(lo), I64(lo + kDistinct / 64)));
  }
  ExprPtr expr = Expr::Or(std::move(leaves));
  ExecContext ctx(threads);
  bench::RunMeta meta(state, ctx.num_threads());
  for (auto _ : state) {
    auto out = QueryEngine::CountRows(*r, expr, &ctx);
    CODS_CHECK(out.ok()) << out.status().ToString();
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(r->rows());
}

// Group-by table in the dictionary-encoding sweet spot: few distinct
// groups (P) and measures (V), so the per-(group, measure) compressed
// AND-count matrix stays dense work rather than dictionary overhead.
std::shared_ptr<const Table> CachedGroupTable() {
  static std::shared_ptr<const Table>* cache = [] {
    WorkloadSpec spec;
    spec.num_rows = bench::BenchRows();
    spec.num_distinct = kDistinct;
    spec.payload_distinct = 50;
    spec.dependent_distinct = 24;
    auto r = GenerateEvolutionTable(spec);
    CODS_CHECK(r.ok()) << r.status().ToString();
    return new std::shared_ptr<const Table>(r.ValueOrDie());
  }();
  return *cache;
}

void BM_Query_GroupBySum(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto r = CachedGroupTable();
  // WHERE K < half: every group bitmap is narrowed by one compressed
  // AND before the per-measure counts.
  ExprPtr where = Expr::Compare(kKeyColumn, CompareOp::kLt,
                                I64(kDistinct / 2));
  ExecContext ctx(threads);
  bench::RunMeta meta(state, ctx.num_threads());
  for (auto _ : state) {
    auto out = QueryEngine::GroupBySumRows(*r, kDependentColumn,
                                           kPayloadColumn, where, &ctx);
    CODS_CHECK(out.ok()) << out.status().ToString();
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(r->rows());
}

#define CODS_QUERY_BENCH(fn) \
  BENCHMARK(fn)->Unit(benchmark::kMillisecond)->MinTime(0.1)

// Selectivity sweep x thread sweep for the nested shapes.
#define CODS_QUERY_BENCH_SWEEP(fn)                                      \
  CODS_QUERY_BENCH(fn)                                                  \
      ->ArgNames({"sel_pct", "threads"})                                \
      ->Args({10, 1})                                                   \
      ->Args({50, 1})                                                   \
      ->Args({100, 1})                                                  \
      ->Args({50, 2})                                                   \
      ->Args({50, 4})                                                   \
      ->Args({50, 8})

CODS_QUERY_BENCH_SWEEP(BM_Query_NestedSelect);
CODS_QUERY_BENCH_SWEEP(BM_Query_NestedCount);
CODS_QUERY_BENCH(BM_Query_WideOrCount)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(8);
CODS_QUERY_BENCH(BM_Query_GroupBySum)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace cods

CODS_BENCH_MAIN("query")

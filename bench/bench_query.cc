// The query API on the compressed store: nested-expression selection at
// swept selectivities, count-only vs materializing plans, and
// group-by-sum — all through the QueryEngine/Expr path the SELECT
// statement grammar compiles to.
//
//   * BM_Query_NestedSelect / BM_Query_NestedCount: the acceptance-shape
//     expression  K < t AND (V >= 20 OR NOT P IN (...))  with the
//     threshold t swept so the outer selectivity moves ~10% -> ~100%.
//     Leaves evaluate in parallel (one task each), AND/OR combine in the
//     single-pass k-way kernels; the Count series never materializes the
//     root bitmap.
//   * BM_Query_WideOrSelect: a flattened 16-leaf OR (the IN-list /
//     union-of-predicates regime) — exercises k-way fan-in after
//     normalization.
//   * BM_Query_GroupBySum: SUM(V) GROUP BY P with a WHERE narrowing,
//     one task per group over compressed AND-counts.
//   * BM_Query_JoinSelect: the compressed equi-join (key-FK shape) at
//     swept join selectivities — the fraction of fact rows whose key
//     survives into the filtered dimension table — times threads.
//   * BM_Query_JoinGeneral: the general value-clustered shape (both
//     sides duplicated).
//   * BM_Query_OrderByLimit: ORDER BY + LIMIT over a filtered select,
//     full-sort vs top-100.
//
// All series sweep --threads 1/2/4/8 via the ExecContext and carry the
// threads / wall_ms counters for the regression gate.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "query/join.h"
#include "query/query_engine.h"

namespace cods {
namespace {

constexpr uint64_t kDistinct = 1000;

Value I64(uint64_t v) { return Value(static_cast<int64_t>(v)); }

// K < threshold AND (V >= 20 OR NOT P IN (1, 2, 3)) — the nested
// acceptance shape; `pct` positions the threshold in the key domain.
ExprPtr NestedExpr(int64_t pct) {
  return Expr::And(
      {Expr::Compare(kKeyColumn, CompareOp::kLt, I64(kDistinct * pct / 100)),
       Expr::Or({Expr::Compare(kPayloadColumn, CompareOp::kGe, I64(20)),
                 Expr::Not(Expr::In(kPayloadColumn,
                                    {I64(1), I64(2), I64(3)}))})});
}

void BM_Query_NestedSelect(benchmark::State& state) {
  const int64_t pct = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  auto r = bench::CachedR(kDistinct);
  ExprPtr expr = NestedExpr(pct);
  ExecContext ctx(threads);
  bench::RunMeta meta(state, ctx.num_threads());
  uint64_t selected = 0;
  for (auto _ : state) {
    auto out = QueryEngine::SelectRows(*r, {}, expr, "sel", &ctx);
    CODS_CHECK(out.ok()) << out.status().ToString();
    selected = out.ValueOrDie()->rows();
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(r->rows());
  state.counters["selected"] = static_cast<double>(selected);
}

void BM_Query_NestedCount(benchmark::State& state) {
  const int64_t pct = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  auto r = bench::CachedR(kDistinct);
  ExprPtr expr = NestedExpr(pct);
  ExecContext ctx(threads);
  bench::RunMeta meta(state, ctx.num_threads());
  uint64_t count = 0;
  for (auto _ : state) {
    auto out = QueryEngine::CountRows(*r, expr, &ctx);
    CODS_CHECK(out.ok()) << out.status().ToString();
    count = out.ValueOrDie();
    benchmark::DoNotOptimize(count);
  }
  state.counters["rows"] = static_cast<double>(r->rows());
  state.counters["selected"] = static_cast<double>(count);
}

// A 16-leaf disjunction over scattered key ranges: after normalization
// this is ONE 16-way WahOrMany fan-in.
void BM_Query_WideOrCount(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto r = bench::CachedR(kDistinct);
  std::vector<ExprPtr> leaves;
  for (uint64_t i = 0; i < 16; ++i) {
    uint64_t lo = i * kDistinct / 16;
    leaves.push_back(
        Expr::Between(kKeyColumn, I64(lo), I64(lo + kDistinct / 64)));
  }
  ExprPtr expr = Expr::Or(std::move(leaves));
  ExecContext ctx(threads);
  bench::RunMeta meta(state, ctx.num_threads());
  for (auto _ : state) {
    auto out = QueryEngine::CountRows(*r, expr, &ctx);
    CODS_CHECK(out.ok()) << out.status().ToString();
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(r->rows());
}

// Group-by table in the dictionary-encoding sweet spot: few distinct
// groups (P) and measures (V), so the per-(group, measure) compressed
// AND-count matrix stays dense work rather than dictionary overhead.
std::shared_ptr<const Table> CachedGroupTable() {
  static std::shared_ptr<const Table>* cache = [] {
    WorkloadSpec spec;
    spec.num_rows = bench::BenchRows();
    spec.num_distinct = kDistinct;
    spec.payload_distinct = 50;
    spec.dependent_distinct = 24;
    auto r = GenerateEvolutionTable(spec);
    CODS_CHECK(r.ok()) << r.status().ToString();
    return new std::shared_ptr<const Table>(r.ValueOrDie());
  }();
  return *cache;
}

void BM_Query_GroupBySum(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto r = CachedGroupTable();
  // WHERE K < half: every group bitmap is narrowed by one compressed
  // AND before the per-measure counts.
  ExprPtr where = Expr::Compare(kKeyColumn, CompareOp::kLt,
                                I64(kDistinct / 2));
  ExecContext ctx(threads);
  bench::RunMeta meta(state, ctx.num_threads());
  for (auto _ : state) {
    auto out = QueryEngine::GroupBySumRows(*r, kDependentColumn,
                                           kPayloadColumn, where, &ctx);
    CODS_CHECK(out.ok()) << out.status().ToString();
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(r->rows());
}

// The filtered dimension side of the join sweep: T keyed on K, shrunk
// to the first `pct`% of the key domain — joining S against it keeps
// ~pct% of S's rows (the join selectivity).
std::shared_ptr<const Table> CachedDimension(int64_t pct) {
  static std::map<int64_t, std::shared_ptr<const Table>>* cache =
      new std::map<int64_t, std::shared_ptr<const Table>>();
  auto it = cache->find(pct);
  if (it != cache->end()) return it->second;
  const GeneratedPair& pair = bench::CachedPair(kDistinct);
  auto t = QueryEngine::SelectRows(
      *pair.t, {},
      pct >= 100 ? nullptr
                 : Expr::Compare(kKeyColumn, CompareOp::kLt,
                                 I64(kDistinct * pct / 100)),
      "Tdim");
  CODS_CHECK(t.ok()) << t.status().ToString();
  return cache->emplace(pct, t.ValueOrDie()).first->second;
}

void BM_Query_JoinSelect(benchmark::State& state) {
  const int64_t pct = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  const GeneratedPair& pair = bench::CachedPair(kDistinct);
  auto dim = CachedDimension(pct);
  ExecContext ctx(threads);
  bench::RunMeta meta(state, ctx.num_threads());
  uint64_t out_rows = 0;
  std::string path;
  for (auto _ : state) {
    JoinStats stats;
    auto out = CompressedEquiJoin(*pair.s, *dim, 0, 0, "J", &ctx, &stats);
    CODS_CHECK(out.ok()) << out.status().ToString();
    out_rows = out.ValueOrDie()->rows();
    path = stats.path;
    benchmark::DoNotOptimize(out);
  }
  CODS_CHECK(path == "fk-right") << path;
  state.counters["rows"] = static_cast<double>(pair.s->rows());
  state.counters["out_rows"] = static_cast<double>(out_rows);
}

void BM_Query_JoinGeneral(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  // Both sides duplicated: every join value fans out 6 x 4.
  static const GeneratedPair* pair = [] {
    auto p = GenerateGeneralMergePair(1'000, 6, 4);
    CODS_CHECK(p.ok()) << p.status().ToString();
    return new GeneratedPair(std::move(p).ValueOrDie());
  }();
  ExecContext ctx(threads);
  bench::RunMeta meta(state, ctx.num_threads());
  uint64_t out_rows = 0;
  for (auto _ : state) {
    auto out = CompressedEquiJoin(*pair->s, *pair->t, 0, 0, "J", &ctx);
    CODS_CHECK(out.ok()) << out.status().ToString();
    out_rows = out.ValueOrDie()->rows();
    benchmark::DoNotOptimize(out);
  }
  state.counters["out_rows"] = static_cast<double>(out_rows);
}

void BM_Query_OrderByLimit(benchmark::State& state) {
  const int64_t limit = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  auto r = bench::CachedR(kDistinct);
  // WHERE keeps ~half the rows, then sort descending on the key and
  // truncate — the SELECT ... ORDER BY K DESC LIMIT n pipeline.
  ExprPtr where = Expr::Compare(kPayloadColumn, CompareOp::kGe, I64(20));
  ExecContext ctx(threads);
  auto filtered = QueryEngine::SelectRows(*r, {}, where, "sel", &ctx);
  CODS_CHECK(filtered.ok()) << filtered.status().ToString();
  bench::RunMeta meta(state, ctx.num_threads());
  for (auto _ : state) {
    auto out = QueryEngine::SortRows(*filtered.ValueOrDie(), kKeyColumn,
                                     /*desc=*/true, limit, "sorted", &ctx);
    CODS_CHECK(out.ok()) << out.status().ToString();
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] =
      static_cast<double>(filtered.ValueOrDie()->rows());
}

#define CODS_QUERY_BENCH(fn) \
  BENCHMARK(fn)->Unit(benchmark::kMillisecond)->MinTime(0.1)

// Selectivity sweep x thread sweep for the nested shapes.
#define CODS_QUERY_BENCH_SWEEP(fn)                                      \
  CODS_QUERY_BENCH(fn)                                                  \
      ->ArgNames({"sel_pct", "threads"})                                \
      ->Args({10, 1})                                                   \
      ->Args({50, 1})                                                   \
      ->Args({100, 1})                                                  \
      ->Args({50, 2})                                                   \
      ->Args({50, 4})                                                   \
      ->Args({50, 8})

CODS_QUERY_BENCH_SWEEP(BM_Query_NestedSelect);
CODS_QUERY_BENCH_SWEEP(BM_Query_NestedCount);
CODS_QUERY_BENCH(BM_Query_WideOrCount)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(8);
CODS_QUERY_BENCH(BM_Query_GroupBySum)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(8);
// Join selectivity x thread sweep (key-FK shape).
CODS_QUERY_BENCH(BM_Query_JoinSelect)
    ->ArgNames({"match_pct", "threads"})
    ->Args({10, 1})
    ->Args({50, 1})
    ->Args({100, 1})
    ->Args({50, 2})
    ->Args({50, 4})
    ->Args({50, 8});
CODS_QUERY_BENCH(BM_Query_JoinGeneral)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(8);
// Full sort vs top-100, thread sweep at the full-sort point.
CODS_QUERY_BENCH(BM_Query_OrderByLimit)
    ->ArgNames({"limit", "threads"})
    ->Args({-1, 1})
    ->Args({100, 1})
    ->Args({-1, 2})
    ->Args({-1, 4})
    ->Args({-1, 8});

}  // namespace
}  // namespace cods

CODS_BENCH_MAIN("query")

// Snapshot-isolated serving under a live writer: the query storm that
// proves readers scale while SMO scripts commit (the PR 7 acceptance
// run).
//
//   * BM_Concurrent_QueryStorm/readers:N — N reader threads each pin a
//     snapshot per query (GetSnapshot -> QueryEngine COUNT on R) while
//     --writer-scripts background streams (default 1) commit ADD/DROP
//     COLUMN toggle scripts against their own victim tables through the
//     snapshot-mode EvolutionEngine. Readers never take the commit
//     lock, so throughput should scale with N and the p99 query latency
//     should stay flat as commits land. Counters:
//       queries_per_sec  total reader throughput (larger is better —
//                        the regression gate inverts the ratio)
//       p99_stall_us     99th-percentile per-query latency, pin
//                        included: the reader-visible commit stall
//       scripts_committed  writer progress during the measured run
//   * BM_Concurrent_SnapshotPin — the raw cost of pinning (one atomic
//     shared-ptr load + pin accounting) while a writer churns roots.
//
// The reader sweep is 1/2/4/8; `--readers=N` pins it to one value, so
// the series are registered from BenchMain's hook rather than at static
// init (CODS_BENCH_MAIN_REGISTERED).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "concurrency/snapshot_catalog.h"
#include "evolution/engine.h"
#include "query/query_engine.h"

namespace cods {
namespace {

constexpr uint64_t kDistinct = 1000;
constexpr int kQueriesPerBatch = 32;

Value I64(uint64_t v) { return Value(static_cast<int64_t>(v)); }

// The serving core under test: R for the readers plus one small victim
// table per writer stream (disjoint write sets, so every commit rebases
// and none aborts — the storm measures serving, not conflict policy).
void SeedServing(SnapshotCatalog* serving, int writer_streams) {
  Catalog seed;
  CODS_CHECK_OK(seed.AddTable(bench::CachedR(kDistinct)));
  for (int w = 0; w < writer_streams; ++w) {
    WorkloadSpec spec;
    spec.num_rows = 1'000;
    spec.num_distinct = 10;
    spec.seed = 7 + static_cast<uint64_t>(w);
    auto victim =
        GenerateEvolutionTable(spec, "W" + std::to_string(w));
    CODS_CHECK(victim.ok()) << victim.status().ToString();
    CODS_CHECK_OK(seed.AddTable(victim.ValueOrDie()));
  }
  serving->Reset(seed);
}

// One background writer stream: alternately adds and drops two columns
// on its victim, each direction one committed script, paced at a few
// hundred scripts per second. The pacing matters: an unpaced loop can
// commit ~100K roots/s, which measures allocator churn, not serving —
// online evolution commits occasionally while queries run constantly.
void WriterLoop(SnapshotCatalog* serving, const std::string& victim,
                std::atomic<bool>* stop,
                std::atomic<uint64_t>* scripts_committed) {
  EvolutionEngine engine(serving);
  for (uint64_t i = 0; !stop->load(std::memory_order_relaxed); ++i) {
    Status st;
    if (i % 2 == 0) {
      st = engine.ApplyAll(
          {Smo::AddColumn(victim, {"P1", DataType::kInt64}, I64(1)),
           Smo::AddColumn(victim, {"P2", DataType::kInt64}, I64(2))});
    } else {
      st = engine.ApplyAll(
          {Smo::DropColumn(victim, "P1"), Smo::DropColumn(victim, "P2")});
    }
    CODS_CHECK(st.ok()) << st.ToString();
    scripts_committed->fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void BM_Concurrent_QueryStorm(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  const int writer_streams = bench::BenchWriterScripts();

  SnapshotCatalog serving;
  SeedServing(&serving, writer_streams);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scripts_committed{0};
  std::vector<std::thread> writers;
  writers.reserve(static_cast<size_t>(writer_streams));
  for (int w = 0; w < writer_streams; ++w) {
    writers.emplace_back(WriterLoop, &serving, "W" + std::to_string(w),
                         &stop, &scripts_committed);
  }

  // ~5% key selectivity: heavy enough to be a real compressed-count
  // query, light enough that per-query latency resolves commit stalls.
  const QueryRequest count = QueryRequest::Count(
      "R", Expr::Compare(kKeyColumn, CompareOp::kLt, I64(kDistinct / 20)));

  bench::RunMeta meta(state, readers);
  std::vector<double> stalls_us;
  uint64_t total_queries = 0;
  double total_seconds = 0.0;
  for (auto _ : state) {
    std::vector<std::vector<double>> latencies(
        static_cast<size_t>(readers));
    auto batch_start = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(readers));
    for (int r = 0; r < readers; ++r) {
      pool.emplace_back([&serving, &count, &latencies, r] {
        // Each reader is one single-threaded query stream: parallelism
        // comes from the reader count, not nested kernel threads.
        ExecContext ctx(1);
        std::vector<double>& mine = latencies[static_cast<size_t>(r)];
        mine.reserve(kQueriesPerBatch);
        for (int q = 0; q < kQueriesPerBatch; ++q) {
          auto t0 = std::chrono::steady_clock::now();
          Snapshot snap = serving.GetSnapshot();
          auto result = QueryEngine(snap.store()).Execute(count, &ctx);
          CODS_CHECK(result.ok()) << result.status().ToString();
          benchmark::DoNotOptimize(result.ValueOrDie().count);
          mine.push_back(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
        }
      });
    }
    for (std::thread& t : pool) t.join();
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - batch_start)
                         .count();
    state.SetIterationTime(elapsed);
    total_seconds += elapsed;
    total_queries +=
        static_cast<uint64_t>(readers) * kQueriesPerBatch;
    for (std::vector<double>& mine : latencies) {
      stalls_us.insert(stalls_us.end(), mine.begin(), mine.end());
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();

  state.counters["queries_per_sec"] =
      total_seconds > 0 ? static_cast<double>(total_queries) / total_seconds
                        : 0.0;
  state.counters["p99_stall_us"] = bench::Percentile(stalls_us, 0.99);
  state.counters["scripts_committed"] =
      static_cast<double>(scripts_committed.load());
}

void BM_Concurrent_SnapshotPin(benchmark::State& state) {
  SnapshotCatalog serving;
  SeedServing(&serving, 1);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scripts_committed{0};
  std::thread writer(WriterLoop, &serving, "W0", &stop,
                     &scripts_committed);
  bench::RunMeta meta(state, 1);
  for (auto _ : state) {
    Snapshot snap = serving.GetSnapshot();
    benchmark::DoNotOptimize(snap.id());
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace

// Registered from BenchMain's hook: the sweep depends on --readers,
// which does not exist yet at static-init time.
void RegisterConcurrentBenches() {
  auto* storm = ::benchmark::RegisterBenchmark("BM_Concurrent_QueryStorm",
                                               BM_Concurrent_QueryStorm);
  storm->ArgName("readers")->UseManualTime()->Unit(benchmark::kMillisecond);
  if (bench::BenchReaders() > 0) {
    storm->Arg(bench::BenchReaders());
  } else {
    for (int readers : {1, 2, 4, 8}) storm->Arg(readers);
  }
  ::benchmark::RegisterBenchmark("BM_Concurrent_SnapshotPin",
                                 BM_Concurrent_SnapshotPin);
}

}  // namespace cods

CODS_BENCH_MAIN_REGISTERED("concurrent", &cods::RegisterConcurrentBenches)

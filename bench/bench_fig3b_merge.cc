// Figure 3(b): mergence time vs number of distinct values.
// Series: D = CODS key–foreign-key mergence, C = row-store hash join,
// C+I = row store + index rebuild, M = column store at query level.
// (The paper's Figure 3(b) has no SQLite series.)
//
// Workload: S(K, V) with CODS_BENCH_ROWS rows joined with T(K, P) that
// has one row per distinct key, producing R(K, V, P).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "evolution/merge.h"
#include "query/query_evolution.h"

namespace cods {
namespace {

using bench::CachedPair;
using bench::CachedRowPair;
using bench::DistinctSweep;

void ReportRows(benchmark::State& state, uint64_t out_rows) {
  state.counters["distinct"] = static_cast<double>(state.range(0));
  state.counters["rows"] = static_cast<double>(cods::bench::BenchRows());
  state.counters["out_rows"] = static_cast<double>(out_rows);
}

// D: CODS data-level mergence (key–FK fast path).
void BM_Merge_D_Cods(benchmark::State& state) {
  const GeneratedPair& pair =
      CachedPair(static_cast<uint64_t>(state.range(0)));
  uint64_t out_rows = 0;
  for (auto _ : state) {
    auto result = CodsMerge(*pair.s, *pair.t, {kKeyColumn}, {}, "R");
    CODS_CHECK(result.ok()) << result.status().ToString();
    CODS_CHECK(result.ValueOrDie().used_key_fk);
    out_rows = result.ValueOrDie().table->rows();
    benchmark::DoNotOptimize(result);
  }
  ReportRows(state, out_rows);
}

template <BaselineKind kKind>
void BM_Merge_RowStore(benchmark::State& state) {
  const bench::RowPair& pair =
      CachedRowPair(static_cast<uint64_t>(state.range(0)));
  uint64_t out_rows = 0;
  for (auto _ : state) {
    auto result =
        RowStoreMerge(*pair.s, *pair.t, {kKeyColumn}, {}, kKind, "R");
    CODS_CHECK(result.ok()) << result.status().ToString();
    out_rows = result.ValueOrDie().r->rows();
    benchmark::DoNotOptimize(result);
  }
  ReportRows(state, out_rows);
}

void BM_Merge_M_ColumnQueryLevel(benchmark::State& state) {
  const GeneratedPair& pair =
      CachedPair(static_cast<uint64_t>(state.range(0)));
  uint64_t out_rows = 0;
  for (auto _ : state) {
    auto result =
        ColumnQueryLevelMerge(*pair.s, *pair.t, {kKeyColumn}, {}, "R");
    CODS_CHECK(result.ok()) << result.status().ToString();
    out_rows = result.ValueOrDie().r->rows();
    benchmark::DoNotOptimize(result);
  }
  ReportRows(state, out_rows);
}

void ApplySweep(benchmark::internal::Benchmark* b) {
  for (int64_t d : DistinctSweep()) b->Arg(d);
  b->Unit(benchmark::kMillisecond);
  b->Iterations(1);
  // Raw repetition entries stay in the JSON: the regression gate
  // tracks best-of-repetitions, which single-iteration series need
  // for stability on noisy runners.
  b->Repetitions(5);
  b->ReportAggregatesOnly(false);
}

BENCHMARK(BM_Merge_D_Cods)->Apply(ApplySweep);
BENCHMARK_TEMPLATE(BM_Merge_RowStore, BaselineKind::kRowStore)
    ->Name("BM_Merge_C_RowStore")
    ->Apply(ApplySweep);
BENCHMARK_TEMPLATE(BM_Merge_RowStore, BaselineKind::kRowStoreIndexed)
    ->Name("BM_Merge_CI_RowStoreIndexed")
    ->Apply(ApplySweep);
BENCHMARK(BM_Merge_M_ColumnQueryLevel)->Apply(ApplySweep);

}  // namespace
}  // namespace cods

CODS_BENCH_MAIN("fig3b_merge")

// Script-level scheduling: serial ApplyAll vs the planner + task-graph
// executor (ApplyAllPlanned) on scripts with exploitable inter-operator
// parallelism. Two shapes:
//
//   * Wide: k independent DECOMPOSEs over k disjoint tables — the DAG is
//     k roots, so all k operators may overlap.
//   * Diamond: PARTITION fan-out into two independent PARTITIONs, then
//     two independent UNIONs — a 2-wide diamond with a 3-stage critical
//     path.
//
// Every planned series records the task-graph stats (`max_parallel`,
// `tasks`, `edges`): on multicore hardware the speedup shows in
// real_time, on a 1-vCPU CI runner the overlap still shows in
// max_parallel >= 2. The planned/threads:1 series measures pure planner
// + staging overhead against the serial baseline.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "evolution/engine.h"
#include "plan/script_planner.h"

namespace cods {
namespace {

constexpr uint64_t kDistinct = 1000;
constexpr int kWideTables = 4;

// k independent DECOMPOSEs over R0..R{k-1}.
std::vector<Smo> WideScript(int k) {
  std::vector<Smo> script;
  script.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    std::string n = std::to_string(i);
    script.push_back(Smo::DecomposeTable(
        "R" + n, "S" + n, {kKeyColumn, kPayloadColumn}, {}, "T" + n,
        {kKeyColumn, kDependentColumn}, {kKeyColumn}));
  }
  return script;
}

std::unique_ptr<Catalog> WideCatalog(int k) {
  auto catalog = std::make_unique<Catalog>();
  for (int i = 0; i < k; ++i) {
    CODS_CHECK_OK(catalog->AddTable(
        bench::CachedR(kDistinct)->WithName("R" + std::to_string(i))));
  }
  return catalog;
}

// PARTITION R; PARTITION both halves (independent); UNION the quarters
// crosswise (independent).
std::vector<Smo> DiamondScript() {
  const auto lit = [](uint64_t v) { return Value(static_cast<int64_t>(v)); };
  std::vector<Smo> script;
  script.push_back(Smo::PartitionTable("R", "L", "H", kKeyColumn,
                                       CompareOp::kLt, lit(kDistinct / 2)));
  script.push_back(Smo::PartitionTable("L", "L1", "L2", kKeyColumn,
                                       CompareOp::kLt, lit(kDistinct / 4)));
  script.push_back(Smo::PartitionTable("H", "H1", "H2", kKeyColumn,
                                       CompareOp::kLt,
                                       lit(3 * kDistinct / 4)));
  script.push_back(Smo::UnionTables("L1", "H1", "M"));
  script.push_back(Smo::UnionTables("L2", "H2", "O"));
  return script;
}

std::unique_ptr<Catalog> DiamondCatalog() {
  auto catalog = std::make_unique<Catalog>();
  CODS_CHECK_OK(catalog->AddTable(bench::CachedR(kDistinct)));
  return catalog;
}

template <typename CatalogFn>
void RunSerial(benchmark::State& state, const std::vector<Smo>& script,
               CatalogFn&& fresh_catalog) {
  bench::RunMeta meta(state, 1);
  EngineOptions options;
  options.num_threads = 1;
  for (auto _ : state) {
    state.PauseTiming();
    auto catalog = fresh_catalog();
    EvolutionEngine engine(catalog.get(), nullptr, options);
    state.ResumeTiming();
    Status st = engine.ApplyAll(script);
    CODS_CHECK(st.ok()) << st.ToString();
  }
  state.counters["tasks"] = static_cast<double>(script.size());
  state.counters["rows"] = static_cast<double>(bench::BenchRows());
}

template <typename CatalogFn>
void RunPlanned(benchmark::State& state, const std::vector<Smo>& script,
                CatalogFn&& fresh_catalog) {
  const int threads = static_cast<int>(state.range(0));
  bench::RunMeta meta(state, ExecContext(threads).num_threads());
  EngineOptions options;
  options.num_threads = threads;
  TaskGraphStats stats{};
  for (auto _ : state) {
    state.PauseTiming();
    auto catalog = fresh_catalog();
    EvolutionEngine engine(catalog.get(), nullptr, options);
    state.ResumeTiming();
    Status st = engine.ApplyAllPlanned(script, &stats);
    CODS_CHECK(st.ok()) << st.ToString();
  }
  const ScriptPlan plan = PlanScript(script);
  state.counters["tasks"] = static_cast<double>(stats.tasks);
  state.counters["edges"] = static_cast<double>(plan.num_edges);
  state.counters["stages"] = static_cast<double>(plan.stages.size());
  state.counters["max_parallel"] = static_cast<double>(stats.max_parallel);
  state.counters["rows"] = static_cast<double>(bench::BenchRows());
}

void BM_Script_WideDecomposeSerial(benchmark::State& state) {
  RunSerial(state, WideScript(kWideTables),
            [] { return WideCatalog(kWideTables); });
}

void BM_Script_WideDecomposePlanned(benchmark::State& state) {
  RunPlanned(state, WideScript(kWideTables),
             [] { return WideCatalog(kWideTables); });
}

void BM_Script_DiamondSerial(benchmark::State& state) {
  RunSerial(state, DiamondScript(), [] { return DiamondCatalog(); });
}

void BM_Script_DiamondPlanned(benchmark::State& state) {
  RunPlanned(state, DiamondScript(), [] { return DiamondCatalog(); });
}

#define CODS_SCRIPT_BENCH(fn) \
  BENCHMARK(fn)->Unit(benchmark::kMillisecond)->MinTime(0.1)

#define CODS_SCRIPT_BENCH_THREADS(fn) \
  CODS_SCRIPT_BENCH(fn)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(8)

CODS_SCRIPT_BENCH(BM_Script_WideDecomposeSerial);
CODS_SCRIPT_BENCH_THREADS(BM_Script_WideDecomposePlanned);
CODS_SCRIPT_BENCH(BM_Script_DiamondSerial);
CODS_SCRIPT_BENCH_THREADS(BM_Script_DiamondPlanned);

}  // namespace
}  // namespace cods

CODS_BENCH_MAIN("script")

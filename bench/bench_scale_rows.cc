// Ablation A3: scalability in table size ("efficiently and scalably").
// Fixed 1000 distinct keys, rows swept up to CODS_BENCH_ROWS; CODS vs
// the column-store query-level baseline. The gap should stay roughly
// constant in relative terms (both are linear, with very different
// constants) — CODS's advantage does not erode with scale.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "evolution/decompose.h"
#include "query/query_evolution.h"

namespace cods {
namespace {

constexpr uint64_t kDistinct = 1000;

std::shared_ptr<const Table> TableWithRows(uint64_t rows) {
  static std::map<uint64_t, std::shared_ptr<const Table>>* cache =
      new std::map<uint64_t, std::shared_ptr<const Table>>();
  auto it = cache->find(rows);
  if (it != cache->end()) return it->second;
  WorkloadSpec spec;
  spec.num_rows = rows;
  spec.num_distinct = kDistinct;
  auto r = GenerateEvolutionTable(spec);
  CODS_CHECK(r.ok());
  return cache->emplace(rows, r.ValueOrDie()).first->second;
}

std::vector<int64_t> RowSweep() {
  std::vector<int64_t> out;
  for (uint64_t r = 10'000; r <= bench::BenchRows(); r *= 10) {
    out.push_back(static_cast<int64_t>(r));
  }
  return out;
}

void BM_Scale_Cods(benchmark::State& state) {
  auto r = TableWithRows(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto result =
        CodsDecompose(*r, "S", {kKeyColumn, kPayloadColumn}, {}, "T",
                      {kKeyColumn, kDependentColumn}, {kKeyColumn});
    CODS_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

void BM_Scale_ColumnQueryLevel(benchmark::State& state) {
  auto r = TableWithRows(static_cast<uint64_t>(state.range(0)));
  DecomposeSpec spec;
  spec.s_columns = {kKeyColumn, kPayloadColumn};
  spec.t_columns = {kKeyColumn, kDependentColumn};
  spec.t_key = {kKeyColumn};
  for (auto _ : state) {
    auto result = ColumnQueryLevelDecompose(*r, spec, "S", "T");
    CODS_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t r : RowSweep()) b->Arg(r);
  b->Unit(benchmark::kMillisecond);
  b->Iterations(1);
  // Raw repetition entries stay in the JSON: the regression gate
  // tracks best-of-repetitions, which single-iteration series need
  // for stability on noisy runners.
  b->Repetitions(5);
  b->ReportAggregatesOnly(false);
}

BENCHMARK(BM_Scale_Cods)->Apply(Sweep);
BENCHMARK(BM_Scale_ColumnQueryLevel)->Apply(Sweep);

}  // namespace
}  // namespace cods

CODS_BENCH_MAIN("scale_rows")

// Ablation A4: key–foreign-key mergence vs the general two-pass
// algorithm (§2.5.1 vs §2.5.2). On a key–FK-eligible input, the general
// algorithm pays for clustering and strided emission; the fast path
// reuses S's columns outright. A fanout sweep then shows the general
// algorithm's cost tracking output size (n1·n2 blowup).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "evolution/merge.h"

namespace cods {
namespace {

void BM_GeneralVsKeyFk_KeyFk(benchmark::State& state) {
  const GeneratedPair& pair =
      bench::CachedPair(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto result = CodsMergeKeyFk(*pair.s, *pair.t, {kKeyColumn}, {}, "R");
    CODS_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  state.counters["distinct"] = static_cast<double>(state.range(0));
}

void BM_GeneralVsKeyFk_General(benchmark::State& state) {
  const GeneratedPair& pair =
      bench::CachedPair(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto result =
        CodsMergeGeneral(*pair.s, *pair.t, {kKeyColumn}, {}, "R");
    CODS_CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  state.counters["distinct"] = static_cast<double>(state.range(0));
}

// Fanout sweep: square joins where each value appears `f` times on both
// sides, output = 1000·f² rows.
void BM_GeneralMerge_Fanout(benchmark::State& state) {
  static std::map<int64_t, GeneratedPair>* cache =
      new std::map<int64_t, GeneratedPair>();
  int64_t fanout = state.range(0);
  auto it = cache->find(fanout);
  if (it == cache->end()) {
    auto pair = GenerateGeneralMergePair(
        1000, static_cast<uint64_t>(fanout),
        static_cast<uint64_t>(fanout), 5);
    CODS_CHECK(pair.ok());
    it = cache->emplace(fanout, std::move(pair).ValueOrDie()).first;
  }
  uint64_t out_rows = 0;
  for (auto _ : state) {
    auto result =
        CodsMergeGeneral(*it->second.s, *it->second.t, {"J"}, {}, "R");
    CODS_CHECK(result.ok());
    out_rows = result.ValueOrDie()->rows();
    benchmark::DoNotOptimize(result);
  }
  state.counters["fanout"] = static_cast<double>(fanout);
  state.counters["out_rows"] = static_cast<double>(out_rows);
}

void DistinctSweep(benchmark::internal::Benchmark* b) {
  for (int64_t d : bench::DistinctSweep()) b->Arg(d);
  b->Unit(benchmark::kMillisecond);
  b->Iterations(1);
  // Raw repetition entries stay in the JSON: the regression gate
  // tracks best-of-repetitions, which single-iteration series need
  // for stability on noisy runners.
  b->Repetitions(5);
  b->ReportAggregatesOnly(false);
}

BENCHMARK(BM_GeneralVsKeyFk_KeyFk)->Apply(DistinctSweep);
BENCHMARK(BM_GeneralVsKeyFk_General)->Apply(DistinctSweep);
BENCHMARK(BM_GeneralMerge_Fanout)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Repetitions(5)
    ->ReportAggregatesOnly(false);

}  // namespace
}  // namespace cods

CODS_BENCH_MAIN("general_merge")

// Ablation A2: the decomposition's "bitmap filtering" executed
// compressed-to-compressed (CODS, §2.4 step 2) vs the naive route of
// decompressing each bitmap, gathering positions, and re-compressing —
// i.e. exactly the decompress/re-compress round trip of Figure 2 that
// the data-level design removes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bitmap/plain_bitmap.h"
#include "bitmap/wah_filter.h"
#include "evolution/decompose.h"

namespace cods {
namespace {

// Shared setup: the dependent column's bitmaps (on the WAH interchange
// form this ablation compares filter strategies over) and the
// distinction position list for a given distinct-key count.
struct FilterSetup {
  std::shared_ptr<const Column> column;
  std::vector<WahBitmap> wahs;  // column's value bitmaps, WAH-encoded
  std::vector<uint64_t> positions;
};

const FilterSetup& Setup(uint64_t distinct) {
  static std::map<uint64_t, FilterSetup>* cache =
      new std::map<uint64_t, FilterSetup>();
  auto it = cache->find(distinct);
  if (it != cache->end()) return it->second;
  auto r = bench::CachedR(distinct);
  FilterSetup s;
  s.column = r->ColumnByName(kDependentColumn).ValueOrDie();
  s.wahs.reserve(s.column->distinct_count());
  for (Vid v = 0; v < s.column->distinct_count(); ++v) {
    s.wahs.push_back(s.column->bitmap(v).ToWah());
  }
  s.positions = DistinctionPositions(*r, {kKeyColumn}).ValueOrDie();
  return cache->emplace(distinct, std::move(s)).first->second;
}

// CODS: compressed-domain filter with a shared rank index (what the
// decomposition operator uses).
void BM_Filter_CompressedRank(benchmark::State& state) {
  const FilterSetup& s = Setup(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    WahPositionFilter filter(s.positions, s.column->rows());
    for (Vid v = 0; v < s.column->distinct_count(); ++v) {
      WahBitmap out = filter.Filter(s.wahs[v]);
      benchmark::DoNotOptimize(out);
    }
  }
  state.counters["distinct"] = static_cast<double>(state.range(0));
}

// Streaming per-bitmap filter: re-walks the position list per bitmap
// (O(v·|positions|) aggregate — fine for one bitmap, bad for many).
void BM_Filter_CompressedStreaming(benchmark::State& state) {
  const FilterSetup& s = Setup(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    for (Vid v = 0; v < s.column->distinct_count(); ++v) {
      WahBitmap out = WahFilterPositions(s.wahs[v], s.positions);
      benchmark::DoNotOptimize(out);
    }
  }
  state.counters["distinct"] = static_cast<double>(state.range(0));
}

// Baseline: decompress -> gather -> re-compress per bitmap.
void BM_Filter_DecodeRecompress(benchmark::State& state) {
  const FilterSetup& s = Setup(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    for (Vid v = 0; v < s.column->distinct_count(); ++v) {
      PlainBitmap plain = PlainBitmap::FromWah(s.wahs[v]);
      PlainBitmap filtered(s.positions.size());
      for (size_t i = 0; i < s.positions.size(); ++i) {
        if (plain.Get(s.positions[i])) filtered.Set(i);
      }
      WahBitmap out = filtered.ToWah();
      benchmark::DoNotOptimize(out);
    }
  }
  state.counters["distinct"] = static_cast<double>(state.range(0));
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int64_t d : bench::DistinctSweep()) b->Arg(d);
  b->Unit(benchmark::kMillisecond);
  b->Iterations(1);
  // Raw repetition entries stay in the JSON: the regression gate
  // tracks best-of-repetitions, which single-iteration series need
  // for stability on noisy runners.
  b->Repetitions(5);
  b->ReportAggregatesOnly(false);
}

BENCHMARK(BM_Filter_CompressedRank)->Apply(Sweep);
BENCHMARK(BM_Filter_CompressedStreaming)->Apply(Sweep);
BENCHMARK(BM_Filter_DecodeRecompress)->Apply(Sweep);

}  // namespace
}  // namespace cods

CODS_BENCH_MAIN("filter_ablation")

// Figure 3(a): decomposition time vs number of distinct values.
// Series (paper legend): D = CODS data-level, C = commercial row store,
// C+I = row store with index rebuild, S = SQLite-style row store,
// M = column store at query level.
//
// Workload: R(K, V, P) with CODS_BENCH_ROWS rows (default 100K; the
// paper uses 10M), decomposed into S(K, V) and T(K, P) keyed on K.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "evolution/decompose.h"
#include "query/query_evolution.h"

namespace cods {
namespace {

using bench::CachedR;
using bench::CachedRowR;
using bench::DistinctSweep;

DecomposeSpec Spec() {
  DecomposeSpec spec;
  spec.s_columns = {kKeyColumn, kPayloadColumn};
  spec.t_columns = {kKeyColumn, kDependentColumn};
  spec.t_key = {kKeyColumn};
  return spec;
}

void ReportRows(benchmark::State& state, uint64_t out_rows) {
  state.counters["distinct"] = static_cast<double>(state.range(0));
  state.counters["rows"] =
      static_cast<double>(cods::bench::BenchRows());
  state.counters["t_rows"] = static_cast<double>(out_rows);
}

// D: CODS data-level decomposition.
void BM_Decompose_D_Cods(benchmark::State& state) {
  auto r = CachedR(static_cast<uint64_t>(state.range(0)));
  uint64_t out_rows = 0;
  for (auto _ : state) {
    auto result =
        CodsDecompose(*r, "S", {kKeyColumn, kPayloadColumn}, {}, "T",
                      {kKeyColumn, kDependentColumn}, {kKeyColumn});
    CODS_CHECK(result.ok()) << result.status().ToString();
    out_rows = result.ValueOrDie().t->rows();
    benchmark::DoNotOptimize(result);
  }
  ReportRows(state, out_rows);
}

// Row-store baselines share a driver.
template <BaselineKind kKind>
void BM_Decompose_RowStore(benchmark::State& state) {
  const RowTable& heap = CachedRowR(static_cast<uint64_t>(state.range(0)));
  uint64_t out_rows = 0;
  for (auto _ : state) {
    auto result = RowStoreDecompose(heap, Spec(), kKind, "S", "T");
    CODS_CHECK(result.ok()) << result.status().ToString();
    out_rows = result.ValueOrDie().t->rows();
    benchmark::DoNotOptimize(result);
  }
  ReportRows(state, out_rows);
}

// M: column store, query level (decompress -> query -> re-compress).
void BM_Decompose_M_ColumnQueryLevel(benchmark::State& state) {
  auto r = CachedR(static_cast<uint64_t>(state.range(0)));
  uint64_t out_rows = 0;
  for (auto _ : state) {
    auto result = ColumnQueryLevelDecompose(*r, Spec(), "S", "T");
    CODS_CHECK(result.ok()) << result.status().ToString();
    out_rows = result.ValueOrDie().t->rows();
    benchmark::DoNotOptimize(result);
  }
  ReportRows(state, out_rows);
}

void ApplySweep(benchmark::internal::Benchmark* b) {
  for (int64_t d : DistinctSweep()) b->Arg(d);
  b->Unit(benchmark::kMillisecond);
  b->Iterations(1);
  // Raw repetition entries stay in the JSON: the regression gate
  // tracks best-of-repetitions, which single-iteration series need
  // for stability on noisy runners.
  b->Repetitions(5);
  b->ReportAggregatesOnly(false);
}

BENCHMARK(BM_Decompose_D_Cods)->Apply(ApplySweep);
BENCHMARK_TEMPLATE(BM_Decompose_RowStore, BaselineKind::kRowStore)
    ->Name("BM_Decompose_C_RowStore")
    ->Apply(ApplySweep);
BENCHMARK_TEMPLATE(BM_Decompose_RowStore, BaselineKind::kRowStoreIndexed)
    ->Name("BM_Decompose_CI_RowStoreIndexed")
    ->Apply(ApplySweep);
BENCHMARK_TEMPLATE(BM_Decompose_RowStore, BaselineKind::kRowStoreLite)
    ->Name("BM_Decompose_S_RowStoreLite")
    ->Apply(ApplySweep);
BENCHMARK(BM_Decompose_M_ColumnQueryLevel)->Apply(ApplySweep);

}  // namespace
}  // namespace cods

CODS_BENCH_MAIN("fig3a_decompose")
